"""One leaderless N-replica quorum group.

A :class:`QuorumGroup` is the third replication architecture next to
the paper's passive and active backup pairs: N equal replicas of one
key range, no primary, and per-operation quorums — a write coordinator
stamps a version vector and needs W acknowledgements, a read
coordinator merges R responses (read-dominant defaults per Kumar &
Agarwal's quorum-consensus protocol). With R+W > N every read quorum
intersects every write quorum, so a strict read always observes the
latest acknowledged write; concurrent writes through different
coordinators surface as *siblings* resolved last-writer-wins.

Two availability modes:

* **strict** — an operation needs its full quorum among replicas the
  coordinator can reach; the group is down while no coordinator can
  assemble ``max(R, W)`` members. This is the mode whose reads carry
  the intersection guarantee the property suite pins down.
* **sloppy** — any live coordinator serves: copies destined to
  unreachable members are parked as *hints* on the next reachable
  member around the ring and count toward W; hinted handoff delivers
  them when the member returns. Availability approaches one crashed
  replica short of total loss, at the price of sibling reads.

Divergence left behind by crashes and partitions is repaired by a
background anti-entropy loop that compares replicas with the Merkle
machinery of :mod:`repro.quorum.merkle` (whose leaf comparator is the
fast diff kernel) and exchanges only the differing keys.

Trace vocabulary: ``quorum.read`` / ``quorum.write`` instants with the
quorum arithmetic in the attrs (the auditor's quorum-intersection and
vv-monotone rules re-check them offline), ``quorum.repair`` spans per
anti-entropy exchange, ``quorum.member.crash`` / ``.recover`` /
``quorum.handoff`` instants for membership churn — and, so the
existing timeline/SLO/audit pipeline works unchanged, a ``fault.crash``
instant when the *group* loses quorum plus a ``takeover`` span when it
regains it, from the same ``<scope>.cluster`` component the
primary-backup pairs use.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError, ShardUnavailableError
from repro.obs.observer import resolve_observer
from repro.obs.recovery import (
    PHASE_DETECT,
    PHASE_VIEW,
    RecoverySpanRecorder,
)
from repro.obs.spans import (
    PHASE_QUORUM_WAIT,
    PHASE_TRANSFER,
    CommitSpanRecorder,
)
from repro.quorum.merkle import DEFAULT_LEAF_SPAN, anti_entropy_sync
from repro.quorum.store import Record, ReplicaStore, Stored
from repro.quorum.versions import VersionVector
from repro.sim.engine import Simulator

MODE_STRICT = "strict"
MODE_SLOPPY = "sloppy"

#: Per-digest CPU cost charged to the anti-entropy repair model.
DIGEST_COMPARE_US = 0.05


class QuorumGroupStats:
    """Always-on protocol counters (events are observer-gated)."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.read_repairs = 0
        self.sibling_reads = 0
        self.hinted_writes = 0
        self.hints_delivered = 0
        self.handoff_bytes = 0
        self.repair_rounds = 0
        self.repair_keys = 0
        self.repair_bytes = 0
        self.repair_digests = 0
        self.repair_model_us = 0.0
        self.quorum_losses = 0
        self.downtime_us = 0.0

    def to_dict(self) -> Dict[str, float]:
        return dict(vars(self))


class QuorumGroup:
    """N replicas of one key range with R/W quorum operations.

    Args:
        group_id: index of this group in its cluster (names the scope).
        num_replicas / read_quorum / write_quorum: the (N, R, W) tuple;
            strict groups should pick R + W > N for read-latest.
        num_keys: size of the group's keyspace.
        sim: the shared simulator (clock + event scheduling).
        sloppy: relax quorums with hinted handoff (see module docs).
        link_rtt_us: base coordinator->replica round trip; actual pairs
            spread deterministically up to ``rtt_spread`` above it.
        byte_us: modeled wire/storage cost per payload byte.
        repair_interval_us: anti-entropy period; 0 disables the loop.
        leaf_span: keys per Merkle leaf for the repair comparator.
        observer: obs hook, usually already scoped to ``group.<id>``.
    """

    def __init__(
        self,
        group_id: int,
        num_replicas: int,
        read_quorum: int,
        write_quorum: int,
        num_keys: int,
        sim: Simulator,
        sloppy: bool = False,
        link_rtt_us: float = 200.0,
        rtt_spread: float = 0.5,
        byte_us: float = 0.01,
        repair_interval_us: float = 0.0,
        leaf_span: int = DEFAULT_LEAF_SPAN,
        observer=None,
    ):
        if num_replicas < 1:
            raise ConfigurationError("need at least one replica")
        if not 1 <= read_quorum <= num_replicas:
            raise ConfigurationError(
                f"read quorum {read_quorum} outside [1, {num_replicas}]"
            )
        if not 1 <= write_quorum <= num_replicas:
            raise ConfigurationError(
                f"write quorum {write_quorum} outside [1, {num_replicas}]"
            )
        self.group_id = group_id
        self.num_replicas = num_replicas
        self.read_quorum = read_quorum
        self.write_quorum = write_quorum
        self.num_keys = num_keys
        self.sim = sim
        self.sloppy = sloppy
        self.link_rtt_us = link_rtt_us
        self.rtt_spread = rtt_spread
        self.byte_us = byte_us
        self.repair_interval_us = repair_interval_us
        self.leaf_span = leaf_span
        self.observer = resolve_observer(observer)
        self.observer.bind_clock(lambda: self.sim.now)

        self.replicas: List[ReplicaStore] = [
            ReplicaStore(num_keys) for _ in range(num_replicas)
        ]
        self._alive: List[bool] = [True] * num_replicas
        #: Directed (src, dst) pairs the current partition blocks.
        self._blocked: Set[Tuple[int, int]] = set()
        #: holder -> target -> key -> hinted sibling set.
        self._hints: Dict[int, Dict[int, Dict[int, Stored]]] = {}
        self._down_since_us: Optional[float] = None
        self._handoff_bytes_since_down = 0
        #: Causal handle of the last quorum-regain recovery span, for
        #: the router's first post-outage completion (resume link).
        self.last_recovery_link = None
        self.stats = QuorumGroupStats()
        self.read_latencies: List[float] = []
        self.write_latencies: List[float] = []
        self._spans = CommitSpanRecorder(self.observer, "quorum")
        if repair_interval_us > 0:
            self.sim.schedule_after(
                repair_interval_us, self._repair_round,
                name=f"group{group_id}-repair",
            )

    # -- topology ------------------------------------------------------------

    @property
    def mode(self) -> str:
        return MODE_SLOPPY if self.sloppy else MODE_STRICT

    def alive(self, member: int) -> bool:
        return self._alive[member]

    def _connected(self, src: int, dst: int) -> bool:
        if not (self._alive[src] and self._alive[dst]):
            return False
        if src == dst:
            return True
        return (src, dst) not in self._blocked

    def _reach(self, coordinator: int) -> int:
        return sum(
            1
            for member in range(self.num_replicas)
            if self._connected(coordinator, member)
        )

    def _rtt_us(self, src: int, dst: int) -> float:
        """Deterministic per-pair round trip (0 for the local replica)."""
        if src == dst:
            return 0.0
        jitter = ((src * 31 + dst * 17) % 7) / 7.0
        return self.link_rtt_us * (1.0 + self.rtt_spread * jitter)

    def can_serve(self) -> bool:
        """Whether a read-modify-write transaction can currently run."""
        if self.sloppy:
            return any(self._alive)
        needed = max(self.read_quorum, self.write_quorum)
        return any(
            self._alive[c] and self._reach(c) >= needed
            for c in range(self.num_replicas)
        )

    def _coordinator(self, key: int, needed: int) -> int:
        """First suitable coordinator on the preference ring for ``key``."""
        preferred = key % self.num_replicas
        for step in range(self.num_replicas):
            candidate = (preferred + step) % self.num_replicas
            if not self._alive[candidate]:
                continue
            if self.sloppy or self._reach(candidate) >= needed:
                return candidate
        raise ShardUnavailableError(self.group_id)

    # -- quorum operations ---------------------------------------------------

    def write(self, key: int, value: bytes) -> Record:
        """Quorum write: stamp, replicate, wait for W acknowledgements."""
        coordinator = self._coordinator(key, self.write_quorum)
        local = self.replicas[coordinator].get(key)
        base = local.vv if local is not None else VersionVector()
        vv = base.bump(coordinator)
        record = Record(
            value=value, vv=vv, ts_us=self.sim.now, writer=coordinator
        )
        stored = Stored((record,))
        payload = record.payload_bytes

        connected = [
            member
            for member in range(self.num_replicas)
            if self._connected(coordinator, member)
        ]
        if not self.sloppy and len(connected) < self.write_quorum:
            raise ShardUnavailableError(self.group_id)

        ack_times: List[float] = []
        remote_copies = 0
        hinted = 0
        for member in connected:
            self.replicas[member].apply(key, record)
            ack_times.append(
                self._rtt_us(coordinator, member) + payload * self.byte_us
            )
            if member != coordinator:
                remote_copies += 1
        if self.sloppy:
            for member in range(self.num_replicas):
                if member in connected:
                    continue
                holder = self._hint_holder(coordinator, member)
                self._park_hint(holder, member, key, stored)
                hinted += 1
                ack_times.append(
                    self._rtt_us(coordinator, holder) + payload * self.byte_us
                )
                if holder != coordinator:
                    remote_copies += 1

        acks = len(ack_times)
        required = self.write_quorum
        if acks < required:
            raise ShardUnavailableError(self.group_id)
        quorum_wait_us = sorted(ack_times)[required - 1]
        transfer_us = remote_copies * payload * self.byte_us

        self.stats.writes += 1
        self.stats.hinted_writes += hinted
        self.write_latencies.append(quorum_wait_us)
        if self.observer.enabled:
            self.observer.count("quorum.writes")
            self.observer.observe("quorum.write_us", quorum_wait_us)
            self.observer.event(
                "quorum", "quorum.write",
                key=key, coordinator=coordinator,
                n=self.num_replicas, r=self.read_quorum, w=self.write_quorum,
                mode=self.mode, acks=acks, required=required,
                hinted=hinted, vv=vv.encode(), latency_us=quorum_wait_us,
            )
            self._spans.phase(PHASE_QUORUM_WAIT, quorum_wait_us)
            self._spans.phase(PHASE_TRANSFER, transfer_us)
            self._spans.finish(op="write", key=key, coordinator=coordinator)
        return record

    def read(self, key: int) -> Optional[Stored]:
        """Quorum read: merge R responses, repair stale members."""
        coordinator = self._coordinator(key, self.read_quorum)
        connected = sorted(
            (
                member
                for member in range(self.num_replicas)
                if self._connected(coordinator, member)
            ),
            key=lambda member: (self._rtt_us(coordinator, member), member),
        )
        if not self.sloppy and len(connected) < self.read_quorum:
            raise ShardUnavailableError(self.group_id)
        targets = connected[: min(self.read_quorum, len(connected))]

        merged: Optional[Stored] = None
        latency_us = 0.0
        for member in targets:
            response = self.replicas[member].get(key)
            payload = response.payload_bytes if response is not None else 0
            response_us = (
                self._rtt_us(coordinator, member) + payload * self.byte_us
            )
            latency_us = max(latency_us, response_us)
            if response is not None:
                merged = response if merged is None else merged.merge(response)
        if merged is not None:
            # Read repair: push the merged state back to the contacted
            # members so one stale replica does not stay stale.
            for member in targets:
                if self.replicas[member].apply_stored(key, merged):
                    self.stats.read_repairs += 1

        siblings = len(merged.siblings) if merged is not None else 0
        required = self.read_quorum if not self.sloppy else 1
        self.stats.reads += 1
        if siblings > 1:
            self.stats.sibling_reads += 1
        self.read_latencies.append(latency_us)
        if self.observer.enabled:
            self.observer.count("quorum.reads")
            self.observer.observe("quorum.read_us", latency_us)
            self.observer.event(
                "quorum", "quorum.read",
                key=key, coordinator=coordinator,
                n=self.num_replicas, r=self.read_quorum, w=self.write_quorum,
                mode=self.mode, acks=len(targets), required=required,
                siblings=siblings,
                vv=merged.vv.encode() if merged is not None else "",
                latency_us=latency_us,
            )
        return merged

    def value_of(self, key: int) -> Optional[bytes]:
        """Convenience: the LWW winner's value, via a quorum read."""
        merged = self.read(key)
        return merged.winner.value if merged is not None else None

    # -- hinted handoff ------------------------------------------------------

    def _hint_holder(self, coordinator: int, target: int) -> int:
        """Next reachable member after ``target`` on the ring (falling
        back to the coordinator itself)."""
        for step in range(1, self.num_replicas):
            candidate = (target + step) % self.num_replicas
            if self._connected(coordinator, candidate):
                return candidate
        return coordinator

    def _park_hint(
        self, holder: int, target: int, key: int, stored: Stored
    ) -> None:
        per_target = self._hints.setdefault(holder, {}).setdefault(target, {})
        existing = per_target.get(key)
        per_target[key] = stored if existing is None else existing.merge(stored)

    def _deliver_hints(self) -> None:
        """Flush every hint whose holder can now reach its target."""
        delivered = 0
        delivered_bytes = 0
        for holder in sorted(self._hints):
            targets = self._hints[holder]
            for target in sorted(targets):
                if not self._connected(holder, target):
                    continue
                per_key = targets.pop(target)
                for key in sorted(per_key):
                    stored = per_key[key]
                    self.replicas[target].apply_stored(key, stored)
                    delivered += 1
                    delivered_bytes += stored.payload_bytes
            if not targets:
                del self._hints[holder]
        if delivered:
            self.stats.hints_delivered += delivered
            self.stats.handoff_bytes += delivered_bytes
            self._handoff_bytes_since_down += delivered_bytes
            if self.observer.enabled:
                self.observer.count("quorum.hints_delivered", delivered)
                self.observer.event(
                    "quorum", "quorum.handoff",
                    keys=delivered, bytes=delivered_bytes,
                )

    @property
    def hints_pending(self) -> int:
        return sum(
            len(per_key)
            for targets in self._hints.values()
            for per_key in targets.values()
        )

    # -- membership and partitions -------------------------------------------

    def crash_member(self, member: int) -> None:
        if not self._alive[member]:
            return
        self._alive[member] = False
        if self.observer.enabled:
            self.observer.event("quorum", "quorum.member.crash", member=member)
        self._reevaluate()

    def recover_member(self, member: int) -> None:
        if self._alive[member]:
            return
        self._alive[member] = True
        if self.observer.enabled:
            self.observer.event(
                "quorum", "quorum.member.recover", member=member
            )
        self._deliver_hints()
        self._reevaluate()

    def apply_partition(
        self, side_a, side_b, symmetric: bool = True
    ) -> None:
        """Block traffic from ``side_a`` to ``side_b`` (both ways when
        symmetric — an asymmetric cut models one-way link loss)."""
        for a in side_a:
            for b in side_b:
                if a == b:
                    raise ConfigurationError(
                        f"member {a} cannot be on both sides of a partition"
                    )
                self._blocked.add((a, b))
                if symmetric:
                    self._blocked.add((b, a))
        self._reevaluate()

    def heal_partition(self) -> None:
        """Remove every cut, deliver deferred hints, re-evaluate."""
        self._blocked.clear()
        self._deliver_hints()
        self._reevaluate()

    def _reevaluate(self) -> None:
        """Track quorum-loss windows in the shared availability
        vocabulary (``fault.crash`` instant, ``takeover`` span)."""
        serving = self.can_serve()
        if serving and self._down_since_us is not None:
            start = self._down_since_us
            self._down_since_us = None
            self.stats.downtime_us += self.sim.now - start
            restored_bytes = self._handoff_bytes_since_down
            self._handoff_bytes_since_down = 0
            if self.observer.enabled:
                self.observer.span(
                    "cluster", "takeover", start, self.sim.now,
                    bytes_restored=restored_bytes,
                    new_primary=f"group{self.group_id}/quorum",
                )
                # The causal recovery tree. A quorum loss is observed
                # the instant a member drops (zero-width detect) and the
                # whole outage is a membership problem — no reachable
                # quorum — so the view phase spans it entirely; hinted
                # handoff delivers instantaneously on regain.
                recorder = RecoverySpanRecorder(self.observer, "cluster")
                recorder.phase(PHASE_DETECT, start, start)
                recorder.phase(
                    PHASE_VIEW, start, self.sim.now,
                    alive=sum(self._alive),
                    bytes_restored=restored_bytes,
                )
                self.last_recovery_link = recorder.finish(
                    node=f"group{self.group_id}/quorum",
                    mode=self.mode,
                )
        elif not serving and self._down_since_us is None:
            self._down_since_us = self.sim.now
            self._handoff_bytes_since_down = 0
            self.stats.quorum_losses += 1
            if self.observer.enabled:
                self.observer.event(
                    "cluster", "fault.crash",
                    node=f"group{self.group_id}/quorum",
                    reason="quorum-lost",
                    alive=sum(self._alive),
                )

    # -- anti-entropy --------------------------------------------------------

    def repair_pass(self) -> int:
        """One sweep of ring-adjacent replica pairs; returns the number
        of keys exchanged. Also the unit the background loop runs."""
        keys_synced = 0
        for left in range(self.num_replicas):
            right = (left + 1) % self.num_replicas
            if right == left:
                break
            if not (
                self._connected(left, right) and self._connected(right, left)
            ):
                continue
            start_us = self.sim.now
            stats = anti_entropy_sync(
                self.replicas[left], self.replicas[right], self.leaf_span
            )
            model_us = (
                stats.digests_compared * DIGEST_COMPARE_US
                + stats.bytes_transferred * self.byte_us
            )
            self.stats.repair_keys += stats.keys_synced
            self.stats.repair_bytes += stats.bytes_transferred
            self.stats.repair_digests += stats.digests_compared
            self.stats.repair_model_us += model_us
            keys_synced += stats.keys_synced
            if self.observer.enabled:
                self.observer.count("quorum.repair_keys", stats.keys_synced)
                self.observer.span(
                    "quorum", "quorum.repair", start_us, start_us + model_us,
                    replica_a=left, replica_b=right,
                    keys=stats.keys_synced,
                    bytes=stats.bytes_transferred,
                    digests=stats.digests_compared,
                    changed=stats.changed_a + stats.changed_b,
                )
        self.stats.repair_rounds += 1
        return keys_synced

    def _repair_round(self) -> None:
        self.repair_pass()
        self.sim.schedule_after(
            self.repair_interval_us, self._repair_round,
            name=f"group{self.group_id}-repair",
        )

    # -- inspection ----------------------------------------------------------

    def replicas_converged(self) -> bool:
        """True when every pair of replicas is byte-identical."""
        first = self.replicas[0].canonical_bytes()
        return all(
            replica.canonical_bytes() == first for replica in self.replicas[1:]
        )

    def __repr__(self) -> str:
        return (
            f"QuorumGroup(id={self.group_id}, n={self.num_replicas}, "
            f"r={self.read_quorum}, w={self.write_quorum}, "
            f"mode={self.mode}, alive={sum(self._alive)})"
        )
