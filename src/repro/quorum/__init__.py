"""Leaderless N-replica quorum groups — the third architecture.

The paper's passive and active backups are both primary-backup; this
package reproduces the obvious third point in the design space (Kumar
& Agarwal's read-dominant quorum consensus): N equal replicas, R/W
quorum reads and writes with per-record version vectors, sloppy-quorum
hinted handoff, and Merkle-tree anti-entropy repair whose leaf
comparator is the fastpath diff kernel.

Layering, bottom up:

* :mod:`repro.quorum.versions` — the version-vector semilattice.
* :mod:`repro.quorum.store` — per-replica sibling-set storage and the
  fixed-width digest cells the repair comparator diffs.
* :mod:`repro.quorum.merkle` — Merkle trees, divergent-key discovery,
  and the bidirectional anti-entropy exchange.
* :mod:`repro.quorum.group` — the quorum protocol itself over the
  shared simulator, with the trace vocabulary the auditor checks.
* :mod:`repro.quorum.workload` / :mod:`repro.quorum.cluster` — the
  client stream and the router-compatible cluster facade.
"""

from repro.quorum.cluster import QuorumCluster
from repro.quorum.group import (
    MODE_SLOPPY,
    MODE_STRICT,
    QuorumGroup,
    QuorumGroupStats,
)
from repro.quorum.merkle import (
    DEFAULT_LEAF_SPAN,
    MerkleTree,
    SyncStats,
    anti_entropy_sync,
    diff_leaves,
    differing_keys,
)
from repro.quorum.store import (
    DIGEST_BYTES,
    EMPTY_DIGEST,
    Record,
    ReplicaStore,
    Stored,
)
from repro.quorum.versions import VersionVector, merge_all
from repro.quorum.workload import KeyPartitioner, QuorumWorkload

__all__ = [
    "DEFAULT_LEAF_SPAN",
    "DIGEST_BYTES",
    "EMPTY_DIGEST",
    "KeyPartitioner",
    "MODE_SLOPPY",
    "MODE_STRICT",
    "MerkleTree",
    "QuorumCluster",
    "QuorumGroup",
    "QuorumGroupStats",
    "QuorumWorkload",
    "Record",
    "ReplicaStore",
    "Stored",
    "SyncStats",
    "VersionVector",
    "anti_entropy_sync",
    "diff_leaves",
    "differing_keys",
    "merge_all",
]
