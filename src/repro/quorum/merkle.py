"""Merkle trees and anti-entropy synchronization between replicas.

A :class:`MerkleTree` summarizes a :class:`~repro.quorum.store.
ReplicaStore` bottom-up: each leaf hashes a fixed span of key digest
cells, interior nodes hash their children, and two replicas compare
state by walking the trees from the root — identical subtrees are
dismissed with one digest compare, so a mostly-converged pair touches
O(log keys) hashes plus the few differing leaves.

At a differing leaf the comparator drops to bytes: both replicas'
leaf buffers (fixed 20-byte digest cells per key) are diffed with
:func:`repro.fastpath.kernels.diff_runs_dispatch` — the same big-int
XOR kernel the Version 2 mirror refresh uses — and the word-aligned
runs of difference map back to exactly the divergent key indexes.
:func:`anti_entropy_sync` then exchanges those keys' sibling sets in
both directions and merges, which is idempotent and commutative, so
repeated rounds converge replicas to byte-identical state.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.fastpath.kernels import diff_runs_dispatch
from repro.quorum.store import DIGEST_BYTES, ReplicaStore

#: Default keys per Merkle leaf.
DEFAULT_LEAF_SPAN = 8


class MerkleTree:
    """Digest tree over one replica's keyspace.

    ``levels[0]`` holds the leaf digests; each higher level pairs the
    one below (an odd tail node is re-hashed alone) up to the root.
    """

    def __init__(
        self,
        store: ReplicaStore,
        leaf_span: int = DEFAULT_LEAF_SPAN,
        digests: memoryview = None,
    ):
        if leaf_span < 1:
            raise ConfigurationError("leaf span must be positive")
        self.leaf_span = leaf_span
        self.num_leaves = (store.num_keys + leaf_span - 1) // leaf_span
        # One zero-copy view of the store's digest cells for the whole
        # build (callers running a sync pass hand in theirs), sliced
        # per leaf — no per-leaf ``bytes`` is ever materialized.
        if digests is None:
            digests = store.digest_view()
        cell_span = leaf_span * DIGEST_BYTES
        total = store.num_keys * DIGEST_BYTES
        leaves = [
            hashlib.sha1(
                digests[start : min(start + cell_span, total)]
            ).digest()
            for start in range(0, total, cell_span)
        ]
        self.levels: List[List[bytes]] = [leaves]
        while len(self.levels[-1]) > 1:
            below = self.levels[-1]
            above = []
            for index in range(0, len(below), 2):
                pair = below[index : index + 2]
                above.append(hashlib.sha1(b"".join(pair)).digest())
            self.levels.append(above)

    @property
    def root(self) -> bytes:
        return self.levels[-1][0]

    @property
    def nodes(self) -> int:
        return sum(len(level) for level in self.levels)

    def __repr__(self) -> str:
        return (
            f"MerkleTree({self.num_leaves} leaves x {self.leaf_span} keys, "
            f"root {self.root.hex()[:8]})"
        )


def diff_leaves(a: MerkleTree, b: MerkleTree) -> Tuple[List[int], int]:
    """Leaf indexes whose digests differ, plus digests compared.

    Walks both trees top-down and prunes identical subtrees, so the
    digest-compare count is the honest cost of the exchange a real
    anti-entropy session would pay.
    """
    if a.num_leaves != b.num_leaves or a.leaf_span != b.leaf_span:
        raise ConfigurationError("cannot diff trees of different geometry")
    compared = 1
    if a.root == b.root:
        return [], compared
    differing: List[int] = []
    # (level, index) frontier, walking from just below the root.
    frontier = [(len(a.levels) - 1, 0)]
    while frontier:
        level, index = frontier.pop()
        if level == 0:
            differing.append(index)
            continue
        below = level - 1
        for child in (2 * index, 2 * index + 1):
            if child >= len(a.levels[below]):
                continue
            compared += 1
            if a.levels[below][child] != b.levels[below][child]:
                frontier.append((below, child))
    differing.sort()
    return differing, compared


def differing_keys(
    store_a: ReplicaStore,
    store_b: ReplicaStore,
    leaf_span: int = DEFAULT_LEAF_SPAN,
) -> Tuple[List[int], int]:
    """Exact divergent key indexes between two replicas.

    Returns ``(keys, digests_compared)``. Leaf-level comparison runs
    through the fast diff kernel on the concatenated digest cells —
    one zero-copy digest view per store for the whole pass (tree build
    and leaf diffs both slice it), no intermediate ``bytes``.
    """
    digests_a = store_a.digest_view()
    digests_b = store_b.digest_view()
    tree_a = MerkleTree(store_a, leaf_span, digests=digests_a)
    tree_b = MerkleTree(store_b, leaf_span, digests=digests_b)
    leaves, compared = diff_leaves(tree_a, tree_b)
    keys: List[int] = []
    cell_span = leaf_span * DIGEST_BYTES
    total = store_a.num_keys * DIGEST_BYTES
    for leaf in leaves:
        start = leaf * cell_span
        stop = min(start + cell_span, total)
        buffer_a = digests_a[start:stop]
        buffer_b = digests_b[start:stop]
        touched = set()
        for offset, length in diff_runs_dispatch(buffer_a, buffer_b):
            first = offset // DIGEST_BYTES
            last = (offset + length - 1) // DIGEST_BYTES
            touched.update(range(first, last + 1))
        start_key = leaf * leaf_span
        keys.extend(sorted(start_key + cell for cell in touched))
    return keys, compared


@dataclass
class SyncStats:
    """What one anti-entropy exchange moved."""

    keys_synced: int = 0
    bytes_transferred: int = 0
    digests_compared: int = 0
    changed_a: int = 0
    changed_b: int = 0

    def merge(self, other: "SyncStats") -> None:
        self.keys_synced += other.keys_synced
        self.bytes_transferred += other.bytes_transferred
        self.digests_compared += other.digests_compared
        self.changed_a += other.changed_a
        self.changed_b += other.changed_b


def anti_entropy_sync(
    store_a: ReplicaStore,
    store_b: ReplicaStore,
    leaf_span: int = DEFAULT_LEAF_SPAN,
) -> SyncStats:
    """One bidirectional repair pass between two replicas.

    Every divergent key's sibling set crosses the wire in whichever
    directions carry information, and both sides merge. Because the
    merge is a semilattice join, a single pass converges the pair:
    afterwards their canonical bytes — and Merkle roots — are equal.
    """
    keys, compared = differing_keys(store_a, store_b, leaf_span)
    stats = SyncStats(digests_compared=compared)
    for key in keys:
        stored_a = store_a.get(key)
        stored_b = store_b.get(key)
        stats.keys_synced += 1
        if stored_a is not None:
            if store_b.apply_stored(key, stored_a):
                stats.changed_b += 1
            stats.bytes_transferred += stored_a.payload_bytes
        if stored_b is not None:
            if store_a.apply_stored(key, stored_b):
                stats.changed_a += 1
            stats.bytes_transferred += stored_b.payload_bytes
    return stats
