"""Quorum groups behind the shard-routing surface.

A :class:`QuorumCluster` is the leaderless counterpart of
:class:`~repro.shard.cluster.ShardedCluster`: ``num_groups``
:class:`~repro.quorum.group.QuorumGroup`\\ s on one shared simulator,
fronted by the same :class:`~repro.shard.shardmap.ShardMap` and served
through the same :meth:`execute` contract — epoch fencing first, then
availability — so the existing :class:`~repro.shard.router.Router`
drives it unmodified. Leaderless groups never change primaries, so map
epochs simply never bump; a group that loses quorum reports
:class:`~repro.errors.ShardUnavailableError` and the router backs off
exactly as it does for a mid-failover pair.

Faults are declarative: member crash/recover points are scheduled on
the simulator, and network partitions go through the shared
:class:`~repro.cluster.faults.FaultInjector`'s
:class:`~repro.cluster.faults.PartitionPlan` machinery so the
``fault.partition`` / ``fault.heal`` trace record is uniform across
all three architectures.

Scopes: group ``g``'s events carry the ``group.g`` component prefix,
and :meth:`scope_name` tells the router to stamp completions with the
same scope, which is what the SLO per-scope accounting keys on.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Sequence

from repro.cluster.faults import FaultInjector, PartitionPlan
from repro.errors import ConfigurationError, ShardUnavailableError
from repro.obs.observer import resolve_observer
from repro.quorum.group import QuorumGroup
from repro.shard.shardmap import ShardMap
from repro.sim.engine import Simulator
from repro.sim.events import SHAPE_SHARED, default_event_queue


class QuorumCluster:
    """``num_groups`` leaderless N-replica groups behind one router.

    Args:
        num_groups: how many quorum groups to run.
        replicas_per_group / read_quorum / write_quorum: the (N, R, W)
            tuple shared by every group.
        keys_per_group: each group's local keyspace size.
        sloppy / link_rtt_us / byte_us / repair_interval_us /
        leaf_span: forwarded to every group (see
            :class:`~repro.quorum.group.QuorumGroup`).
    """

    def __init__(
        self,
        num_groups: int,
        replicas_per_group: int = 3,
        read_quorum: int = 1,
        write_quorum: int = 3,
        keys_per_group: int = 64,
        sloppy: bool = False,
        link_rtt_us: float = 200.0,
        byte_us: float = 0.01,
        repair_interval_us: float = 0.0,
        leaf_span: int = 8,
        observer=None,
    ):
        if num_groups < 1:
            raise ConfigurationError("need at least one group")
        self.num_shards = num_groups
        self.num_groups = num_groups
        self.observer = resolve_observer(observer)
        # Quorum acks and repair rounds collide on exact timestamps
        # constantly: the shared-shape (wheel) queue, like the shards.
        self.sim = Simulator(
            observer=self.observer, queue=default_event_queue(SHAPE_SHARED)
        )
        self.shard_map = ShardMap()
        self.group_observers = [
            self.observer.scoped(f"group.{group_id}")
            for group_id in range(num_groups)
        ]
        self.groups: List[QuorumGroup] = []
        for group_id in range(num_groups):
            self.groups.append(
                QuorumGroup(
                    group_id=group_id,
                    num_replicas=replicas_per_group,
                    read_quorum=read_quorum,
                    write_quorum=write_quorum,
                    num_keys=keys_per_group,
                    sim=self.sim,
                    sloppy=sloppy,
                    link_rtt_us=link_rtt_us,
                    byte_us=byte_us,
                    repair_interval_us=repair_interval_us,
                    leaf_span=leaf_span,
                    observer=self.group_observers[group_id],
                )
            )
            # Leaderless groups have no primary/backup; the map entry
            # names the first two ring members and its epoch never bumps.
            self.shard_map.add_shard(
                f"group{group_id}/r0", f"group{group_id}/r1"
            )
        self.injector = FaultInjector(
            observer=self.observer, clock=lambda: self.sim.now
        )

    # -- serving ------------------------------------------------------------

    def setup(self, workload) -> None:
        """Validate the workload's shape (stores start empty)."""
        if workload.num_shards != self.num_groups:
            raise ConfigurationError(
                f"workload spans {workload.num_shards} groups, "
                f"cluster has {self.num_groups}"
            )

    def scope_name(self, shard_id: int) -> str:
        """The completion scope the router stamps for this group."""
        return f"group.{shard_id}"

    def available(self, shard_id: int) -> bool:
        return self._group(shard_id).can_serve()

    def execute(self, shard_id: int, epoch: int, request) -> object:
        """Run ``request(group)`` with the shard-serving checks."""
        self.shard_map.check_epoch(shard_id, epoch)
        group = self._group(shard_id)
        if not group.can_serve():
            raise ShardUnavailableError(shard_id)
        return request(group)

    def pop_resume_link(self, shard_id: int):
        """Consume the group's pending recovery link, if any (the
        router's post-outage ``recovery.resume`` hook)."""
        group = self._group(shard_id)
        link, group.last_recovery_link = group.last_recovery_link, None
        return link

    # -- faults -------------------------------------------------------------

    def schedule_member_crash(
        self, group_id: int, member: int, at_us: float
    ) -> None:
        group = self._group(group_id)
        self.sim.schedule_at(
            at_us, functools.partial(group.crash_member, member),
            name=f"group{group_id}-crash-r{member}",
        )

    def schedule_member_recover(
        self, group_id: int, member: int, at_us: float
    ) -> None:
        group = self._group(group_id)
        self.sim.schedule_at(
            at_us, functools.partial(group.recover_member, member),
            name=f"group{group_id}-recover-r{member}",
        )

    def schedule_partition(
        self,
        group_id: int,
        side_a: Sequence[int],
        side_b: Sequence[int],
        at_us: float,
        heal_at_us: float = None,
        symmetric: bool = True,
    ) -> PartitionPlan:
        """Cut ``side_a`` from ``side_b`` at ``at_us`` (healing at
        ``heal_at_us`` when given), via the shared fault injector."""
        group = self._group(group_id)
        plan = PartitionPlan(
            at_time_us=at_us,
            heal_at_us=heal_at_us,
            symmetric=symmetric,
            description=(
                f"group{group_id}: {sorted(side_a)} | {sorted(side_b)}"
            ),
        )
        self.injector.schedule_partition(
            plan,
            functools.partial(
                group.apply_partition, tuple(side_a), tuple(side_b), symmetric
            ),
            group.heal_partition,
        )
        self.sim.schedule_at(
            at_us, lambda: self.injector.on_time(self.sim.now),
            name=f"group{group_id}-partition",
        )
        if heal_at_us is not None:
            self.sim.schedule_at(
                heal_at_us, lambda: self.injector.on_time(self.sim.now),
                name=f"group{group_id}-heal",
            )
        return plan

    # -- progress -----------------------------------------------------------

    def run_until(self, until_us: float) -> None:
        self.sim.run(until=until_us)

    def repair_pass_all(self) -> int:
        """One explicit anti-entropy sweep over every group."""
        return sum(group.repair_pass() for group in self.groups)

    @property
    def stats(self) -> Dict[int, Dict[str, float]]:
        return {
            group_id: group.stats.to_dict()
            for group_id, group in enumerate(self.groups)
        }

    def _group(self, shard_id: int) -> QuorumGroup:
        if shard_id < 0 or shard_id >= self.num_groups:
            raise ConfigurationError(
                f"group {shard_id} not in cluster of {self.num_groups}"
            )
        return self.groups[shard_id]

    def __repr__(self) -> str:
        down = sum(1 for group in self.groups if not group.can_serve())
        return (
            f"QuorumCluster({self.num_groups} groups, "
            f"{down} below quorum)"
        )
