"""A key-value read-modify-write workload for quorum groups.

The primary-backup architectures replay the paper's benchmarks through
a transaction engine; a leaderless group's native unit is the keyed
read-modify-write, so this module provides the quorum analogue of
:class:`~repro.shard.workload.ShardedWorkload` with the same client
surface the :class:`~repro.shard.router.Router` drives — ``num_shards``,
a ``partitioner`` with ``shard_of``, ``next_key`` and ``run_on_shard``
— which is what lets one router implementation serve all three
architectures.

Like the sharded benchmarks, the routed global key picks only the
*group*; the transaction itself comes from a per-group deterministic
stream (seeded apart per group), so a whole run is reproducible from
one integer regardless of how retries interleave. Each transaction
quorum-reads a group-local key, derives the next value from the
last-writer-wins winner (a per-key monotone counter, so lost updates
are detectable), and quorum-writes it back. The workload keeps a
client-side shadow of every counter it successfully wrote; tests
compare quorum reads against it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError

#: Per-group stream seeds are spread apart, mirroring the sharded
#: workload's convention, so group i never replays group j's keys.
_GROUP_SEED_STRIDE = 6101


class KeyPartitioner:
    """Round-robin global key -> group mapping.

    Global key ``k`` lives on group ``k % num_groups`` — the same
    modulo convention the shard partitioners use for branches.
    """

    def __init__(self, num_groups: int, total_keys: int):
        if num_groups < 1:
            raise ConfigurationError("need at least one group")
        if total_keys < num_groups:
            raise ConfigurationError(
                f"need at least one key per group "
                f"({total_keys} keys, {num_groups} groups)"
            )
        self.num_groups = num_groups
        self.total_keys = total_keys

    def shard_of(self, key: int) -> int:
        return key % self.num_groups


class QuorumWorkload:
    """The client side of a quorum-group key-value benchmark.

    Args:
        num_groups: how many quorum groups the keyspace spans.
        keys_per_group: size of each group's local keyspace.
        value_bytes: payload padding per written value (sizes the
            replication traffic the cost model accounts).
        seed: drives the client's key stream and every group stream.
    """

    def __init__(
        self,
        num_groups: int,
        keys_per_group: int,
        value_bytes: int = 64,
        seed: int = 0,
    ):
        if keys_per_group < 1:
            raise ConfigurationError("need at least one key per group")
        self.num_shards = num_groups
        self.keys_per_group = keys_per_group
        self.value_bytes = value_bytes
        self.seed = seed
        self.partitioner = KeyPartitioner(
            num_groups, num_groups * keys_per_group
        )
        self.client_rng = random.Random(seed)
        self._group_rngs: List[random.Random] = [
            random.Random(seed + 1 + _GROUP_SEED_STRIDE * group_id)
            for group_id in range(num_groups)
        ]
        #: (group, local key) -> last counter this client acked.
        self.acked: Dict[Tuple[int, int], int] = {}
        self.transactions_run = 0

    # -- client side --------------------------------------------------------

    def next_key(self) -> int:
        """Draw the next transaction's global routing key."""
        return self.client_rng.randrange(self.partitioner.total_keys)

    def encode_value(self, group_id: int, key: int, counter: int) -> bytes:
        body = f"g{group_id}k{key}:c{counter}:".encode("ascii")
        return body + b"x" * max(0, self.value_bytes - len(body))

    @staticmethod
    def decode_counter(value: bytes) -> int:
        """The monotone counter carried in an encoded value."""
        parts = value.split(b":", 2)
        if len(parts) >= 2 and parts[1][:1] == b"c":
            return int(parts[1][1:])
        return 0

    def run_on_shard(self, group_id: int, group) -> None:
        """One read-modify-write transaction against ``group``.

        The group's availability errors propagate to the router, which
        retries; only an acked write advances the client shadow.
        """
        key = self._group_rngs[group_id].randrange(self.keys_per_group)
        merged = group.read(key)
        seen = (
            self.decode_counter(merged.winner.value)
            if merged is not None else 0
        )
        counter = max(seen, self.acked.get((group_id, key), 0)) + 1
        group.write(key, self.encode_value(group_id, key, counter))
        self.acked[(group_id, key)] = counter
        self.transactions_run += 1

    def __repr__(self) -> str:
        return (
            f"QuorumWorkload({self.num_shards} groups x "
            f"{self.keys_per_group} keys, {self.transactions_run} txns)"
        )
