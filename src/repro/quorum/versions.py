"""Version vectors: causality tracking for leaderless replication.

A :class:`VersionVector` maps replica indexes to per-replica write
counters. Two vectors are comparable when one's counters are all >=
the other's (the writes one summarizes *descend from* the other's);
otherwise the writes they stamp happened concurrently — on different
sides of a partition, or through different coordinators — and both
values must be kept as *siblings* until something (last-writer-wins at
read time, or an anti-entropy merge) resolves them.

The algebra the property suite pins down: :meth:`merge` is
commutative, associative and idempotent (a join semilattice), and
:meth:`bump` strictly advances the bumping replica's counter, so a
coordinator's own writes are always totally ordered.

Vectors are immutable and hashable; the wire/trace encoding
(:meth:`encode` / :meth:`decode`) is a canonical sorted string such as
``"0:3,2:1"`` so vectors survive the JSONL trace round-trip and the
auditor can re-check monotonicity offline.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple


class VersionVector:
    """An immutable replica-index -> counter map."""

    __slots__ = ("_counters",)

    def __init__(self, counters: Iterable[Tuple[int, int]] = ()):
        cleaned = {
            int(replica): int(count)
            for replica, count in dict(counters).items()
            if int(count) > 0
        }
        self._counters: Tuple[Tuple[int, int], ...] = tuple(
            sorted(cleaned.items())
        )

    # -- access --------------------------------------------------------------

    def counter(self, replica: int) -> int:
        for index, count in self._counters:
            if index == replica:
                return count
        return 0

    @property
    def counters(self) -> Tuple[Tuple[int, int], ...]:
        return self._counters

    def __bool__(self) -> bool:
        return bool(self._counters)

    # -- algebra -------------------------------------------------------------

    def bump(self, replica: int) -> "VersionVector":
        """A new vector with ``replica``'s counter advanced by one —
        the stamp a coordinator puts on a fresh write."""
        counters = dict(self._counters)
        counters[replica] = counters.get(replica, 0) + 1
        return VersionVector(counters.items())

    def merge(self, other: "VersionVector") -> "VersionVector":
        """Pointwise maximum: the least vector that descends from both
        (commutative, associative, idempotent)."""
        counters = dict(self._counters)
        for replica, count in other._counters:
            if count > counters.get(replica, 0):
                counters[replica] = count
        return VersionVector(counters.items())

    # -- comparison ----------------------------------------------------------

    def descends(self, other: "VersionVector") -> bool:
        """True when this vector's history includes all of ``other``'s
        (every counter >=). Equal vectors descend from each other."""
        return all(
            self.counter(replica) >= count for replica, count in other._counters
        )

    def dominates(self, other: "VersionVector") -> bool:
        """Strictly newer: descends from ``other`` and differs."""
        return self.descends(other) and self._counters != other._counters

    def concurrent_with(self, other: "VersionVector") -> bool:
        """Neither descends from the other: concurrent writes."""
        return not self.descends(other) and not other.descends(self)

    # -- encoding ------------------------------------------------------------

    def encode(self) -> str:
        """Canonical string form (``"0:3,2:1"``; ``""`` when empty)."""
        return ",".join(f"{r}:{c}" for r, c in self._counters)

    @classmethod
    def decode(cls, text: str) -> "VersionVector":
        if not text:
            return cls()
        pairs = []
        for item in text.split(","):
            replica, _, count = item.partition(":")
            pairs.append((int(replica), int(count)))
        return cls(pairs)

    # -- plumbing ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        return self._counters == other._counters

    def __hash__(self) -> int:
        return hash(self._counters)

    def __repr__(self) -> str:
        return f"VersionVector({self.encode()!r})"


def merge_all(vectors: Iterable[VersionVector]) -> VersionVector:
    """Fold :meth:`VersionVector.merge` over ``vectors``."""
    merged = VersionVector()
    for vector in vectors:
        merged = merged.merge(vector)
    return merged
