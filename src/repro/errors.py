"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class MemoryError_(ReproError):
    """Base class for memory-subsystem errors.

    Named with a trailing underscore to avoid shadowing the builtin
    ``MemoryError``.
    """


class OutOfBoundsError(MemoryError_):
    """An access fell outside the bounds of a memory region."""

    def __init__(self, region: str, offset: int, length: int, size: int):
        super().__init__(
            f"access [{offset}, {offset + length}) out of bounds for "
            f"region {region!r} of size {size}"
        )
        self.region = region
        self.offset = offset
        self.length = length
        self.size = size


class AllocationError(MemoryError_):
    """The allocator could not satisfy a request."""


class ProtectionError(MemoryError_):
    """A write hit a protected (Rio) region outside a sanctioned window."""


class CrashedError(ReproError):
    """An operation was attempted on a crashed node or device."""


class TransactionError(ReproError):
    """Base class for transaction-engine misuse and failures."""


class NoTransactionError(TransactionError):
    """An operation that requires an open transaction found none."""


class TransactionAlreadyActiveError(TransactionError):
    """``begin_transaction`` was called while a transaction was open."""


class RangeNotDeclaredError(TransactionError):
    """A write touched bytes not covered by any ``set_range`` call."""

    def __init__(self, offset: int, length: int):
        super().__init__(
            f"write [{offset}, {offset + length}) not covered by set_range"
        )
        self.offset = offset
        self.length = length


class ReplicationError(ReproError):
    """Base class for replication-layer errors."""


class RedoLogFullError(ReplicationError):
    """The redo-log circular buffer is full and the producer must wait."""


class NotMappedError(ReplicationError):
    """A write-through operation targeted an unmapped region."""


class FailoverError(ReplicationError):
    """Failover could not complete (e.g. backup also crashed)."""


class ShardError(ReproError):
    """Base class for sharding-layer errors."""


class StaleShardMapError(ShardError):
    """A request carried a shard-map epoch older than the shard's
    current view (the client must refresh its map and redirect)."""

    def __init__(self, shard_id: int, seen_epoch: int, current_epoch: int):
        super().__init__(
            f"shard {shard_id}: request epoch {seen_epoch} is stale "
            f"(current epoch {current_epoch})"
        )
        self.shard_id = shard_id
        self.seen_epoch = seen_epoch
        self.current_epoch = current_epoch


class ShardUnavailableError(ShardError):
    """The shard's pair is mid-failover; the client should back off
    and retry."""

    def __init__(self, shard_id: int):
        super().__init__(f"shard {shard_id} is failing over")
        self.shard_id = shard_id


class RoutingError(ShardError):
    """The router could not place or complete a request."""


class SimulationError(ReproError):
    """Base class for discrete-event-simulation errors."""


class ClockError(SimulationError):
    """The virtual clock was asked to move backwards."""


class ConfigurationError(ReproError):
    """An experiment or model was configured inconsistently."""
