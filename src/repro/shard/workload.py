"""A paper benchmark split across N shard-local databases.

Each shard runs an ordinary :class:`~repro.workloads.base.Workload`
instance over its own (smaller) database — the layouts, shadow models
and verification all come along for free. What this module adds is the
*client side*: a deterministic stream of global partition keys
(branches for Debit-Credit, warehouses for Order-Entry) drawn
uniformly over the whole cluster, and the mapping from a routed key to
one transaction on the owning shard's workload.

Transactions never span shards: the paper's benchmarks pin each
transaction to one branch/warehouse, which is exactly why they
partition cleanly (the STAR observation).
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import ConfigurationError
from repro.shard.partitioner import Partitioner
from repro.workloads.base import TransactionTarget, Workload
from repro.workloads.debit_credit import DebitCreditWorkload
from repro.workloads.order_entry import OrderEntryWorkload

#: Seeds of per-shard workload streams are spread apart so shard i and
#: shard j never replay each other's transaction sequences.
_SHARD_SEED_STRIDE = 7919


class ShardedWorkload:
    """N per-shard workload instances plus the client key stream.

    Args:
        name: ``"debit-credit"`` or ``"order-entry"``.
        num_shards: how many primary-backup pairs the database spans.
        db_bytes_per_shard: each shard's database size.
        seed: drives both the client's key choices and (offset per
            shard) every shard-local transaction stream, so a whole
            sharded run is reproducible from one integer.
    """

    WORKLOADS = {
        "debit-credit": DebitCreditWorkload,
        "order-entry": OrderEntryWorkload,
    }

    def __init__(
        self,
        name: str,
        num_shards: int,
        db_bytes_per_shard: int,
        seed: int = 0,
    ):
        if name not in self.WORKLOADS:
            raise ConfigurationError(
                f"unknown sharded workload {name!r}; "
                f"choose from {sorted(self.WORKLOADS)}"
            )
        if num_shards < 1:
            raise ConfigurationError("need at least one shard")
        self.name = name
        self.num_shards = num_shards
        self.seed = seed
        cls = self.WORKLOADS[name]
        self.shards: List[Workload] = [
            cls(db_bytes_per_shard, seed=seed + 1 + _SHARD_SEED_STRIDE * i)
            for i in range(num_shards)
        ]
        if name == "debit-credit":
            self.partitioner = Partitioner.for_debit_credit(self.shards)
        else:
            self.partitioner = Partitioner.for_order_entry(self.shards)
        self.client_rng = random.Random(seed)

    # -- client side --------------------------------------------------------

    def next_key(self) -> int:
        """Draw the next transaction's global partition key (uniform
        over branches/warehouses, like the underlying benchmarks)."""
        return self.client_rng.randrange(self.partitioner.total_keys)

    def run_on_shard(self, shard_id: int, target: TransactionTarget) -> None:
        """Execute one transaction of shard ``shard_id``'s stream on
        ``target`` (the shard's serving engine or system)."""
        self.shards[shard_id].run_transaction(target)

    # -- whole-cluster helpers ---------------------------------------------

    @property
    def transactions_run(self) -> int:
        return sum(w.transactions_run for w in self.shards)

    def verify_shard(self, shard_id: int, target: TransactionTarget) -> None:
        self.shards[shard_id].verify(target)

    def __repr__(self) -> str:
        return (
            f"ShardedWorkload({self.name!r}, {self.num_shards} shards, "
            f"{self.partitioner.total_keys} keys)"
        )
