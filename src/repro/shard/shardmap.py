"""The versioned shard map: who serves each shard, and since when.

Clients route against a *snapshot* of this map. Each shard entry
carries an epoch that the serving side bumps whenever the shard's
primary changes; a request built from an older snapshot is rejected
with :class:`~repro.errors.StaleShardMapError` rather than silently
served by the wrong node — the standard fencing trick that lets
routers cache the map without a coherence protocol (cf. the view
numbers of fault-tolerant partial replication, Sutra & Shapiro).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from repro.errors import ConfigurationError, StaleShardMapError

STATUS_UP = "up"
STATUS_FAILING_OVER = "failing-over"
STATUS_DEGRADED = "degraded"  # serving again, but with no backup left


@dataclass(frozen=True)
class ShardInfo:
    """One shard's routing entry."""

    shard_id: int
    primary: str
    backup: str
    epoch: int = 0
    status: str = STATUS_UP


class ShardMap:
    """The authoritative mapping of shards to primary/backup pairs."""

    def __init__(self) -> None:
        self.entries: List[ShardInfo] = []
        self.epoch = 0  # bumped on every entry change, for cheap staleness probes

    def add_shard(self, primary: str, backup: str) -> ShardInfo:
        entry = ShardInfo(len(self.entries), primary, backup)
        self.entries.append(entry)
        return entry

    @property
    def num_shards(self) -> int:
        return len(self.entries)

    def entry(self, shard_id: int) -> ShardInfo:
        if shard_id < 0 or shard_id >= len(self.entries):
            raise ConfigurationError(
                f"shard {shard_id} not in map of {len(self.entries)}"
            )
        return self.entries[shard_id]

    # -- view changes -------------------------------------------------------

    def fail_over(self, shard_id: int) -> ShardInfo:
        """The shard's backup takes over: new primary, bumped epoch.

        Requests routed with the old epoch are fenced off from this
        point on.
        """
        old = self.entry(shard_id)
        updated = ShardInfo(
            shard_id=shard_id,
            primary=old.backup,
            backup="",
            epoch=old.epoch + 1,
            status=STATUS_FAILING_OVER,
        )
        self.entries[shard_id] = updated
        self.epoch += 1
        return updated

    def mark_restored(self, shard_id: int) -> ShardInfo:
        """Takeover work finished: the shard serves again (degraded —
        the pair has no backup until a replacement joins). Routing did
        not change, so the epoch stays put."""
        old = self.entry(shard_id)
        self.entries[shard_id] = replace(old, status=STATUS_DEGRADED)
        return self.entries[shard_id]

    # -- client side --------------------------------------------------------

    def snapshot(self) -> "ShardMapSnapshot":
        """A frozen copy for a router to route against."""
        return ShardMapSnapshot(tuple(self.entries), self.epoch)

    def check_epoch(self, shard_id: int, seen_epoch: int) -> None:
        """Fence a request that was routed with a stale entry."""
        current = self.entry(shard_id).epoch
        if seen_epoch != current:
            raise StaleShardMapError(shard_id, seen_epoch, current)

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{e.shard_id}:{e.primary}@{e.epoch}" for e in self.entries
        )
        return f"ShardMap(epoch={self.epoch}, [{entries}])"


@dataclass(frozen=True)
class ShardMapSnapshot:
    """What a router holds: immutable entries plus the map epoch they
    were taken at."""

    entries: tuple
    epoch: int

    def entry(self, shard_id: int) -> ShardInfo:
        if shard_id < 0 or shard_id >= len(self.entries):
            raise ConfigurationError(
                f"shard {shard_id} not in snapshot of {len(self.entries)}"
            )
        return self.entries[shard_id]

    def with_entry(self, entry: ShardInfo) -> "ShardMapSnapshot":
        """A new snapshot with one entry replaced — the per-entry
        refresh a router performs on a redirect.

        Only the stale shard's entry is updated; every other entry
        (and the snapshot-level ``epoch``, which is bookkeeping for
        ``__repr__``/diagnostics, never consulted for routing) keeps
        whatever the router last saw. That keeps each shard's routing
        state a function of *that shard's* view-change history alone,
        which is what lets the per-shard domain decomposition
        (:mod:`repro.fastpath.shardpar`) replay multi-crash schedules:
        shard A failing over can no longer silently refresh the
        router's entry for shard B.
        """
        if entry.shard_id < 0 or entry.shard_id >= len(self.entries):
            raise ConfigurationError(
                f"shard {entry.shard_id} not in snapshot of "
                f"{len(self.entries)}"
            )
        entries = (
            self.entries[: entry.shard_id]
            + (entry,)
            + self.entries[entry.shard_id + 1:]
        )
        return ShardMapSnapshot(entries, self.epoch)
