"""The client-facing router: key -> shard, with retry and redirect.

A :class:`Router` holds a *snapshot* of the shard map and places each
transaction by its partition key. Two things can go wrong at the
serving side, and the router turns both into forward progress on the
shared simulator instead of an error at the client:

* **Stale view** — the shard failed over after the snapshot was taken;
  the server fences the request
  (:class:`~repro.errors.StaleShardMapError`). The router refreshes
  *that shard's entry* and *redirects* immediately (same simulated
  instant — the entry lookup is a local RPC in a real deployment, and
  its latency is far below the simulator's microsecond event scale).
  The refresh is per-entry on purpose: fetching the whole map would
  couple unrelated shards (one shard's redirect silently refreshing
  another's stale entry), which would make multi-crash schedules
  non-decomposable for the per-shard parallel executor
  (:mod:`repro.fastpath.shardpar`). With a single entry refreshed,
  each shard's redirect behaviour depends only on its own epoch
  history — exactly what each decomposed domain reproduces.
* **Shard mid-failover** — the new primary is still restoring
  (:class:`~repro.errors.ShardUnavailableError`). The router *retries*
  with exponential backoff until the shard returns or the attempt
  budget runs out.

All waiting happens as simulator events, so router traffic interleaves
deterministically with heartbeats, crashes and takeovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import (
    RoutingError,
    ShardUnavailableError,
    StaleShardMapError,
)
from repro.obs.observer import resolve_observer
from repro.shard.cluster import ShardedCluster
from repro.shard.workload import ShardedWorkload


@dataclass
class RoutedTransaction:
    """One submitted transaction's routing lifecycle."""

    key: int
    shard_id: int
    submitted_at_us: float
    completed_at_us: Optional[float] = None
    attempts: int = 0
    dropped: bool = False

    @property
    def latency_us(self) -> Optional[float]:
        if self.completed_at_us is None:
            return None
        return self.completed_at_us - self.submitted_at_us


class Router:
    """Routes a :class:`ShardedWorkload`'s transactions at a cluster."""

    def __init__(
        self,
        cluster: ShardedCluster,
        workload: ShardedWorkload,
        max_attempts: int = 10,
        backoff_us: float = 250.0,
        backoff_factor: float = 2.0,
        max_backoff_us: float = 4_000.0,
        observer=None,
    ):
        if workload.num_shards != cluster.num_shards:
            raise RoutingError(
                f"workload spans {workload.num_shards} shards, "
                f"cluster has {cluster.num_shards}"
            )
        if max_attempts < 1:
            raise RoutingError("need at least one attempt")
        self.cluster = cluster
        self.workload = workload
        self.max_attempts = max_attempts
        self.backoff_us = backoff_us
        self.backoff_factor = backoff_factor
        self.max_backoff_us = max_backoff_us

        self.observer = resolve_observer(observer)
        self.map = cluster.shard_map.snapshot()
        self.routed = 0
        self.completed = 0
        self.retries = 0
        self.redirects = 0
        self.dropped = 0
        self.transactions: List[RoutedTransaction] = []

    # -- submission ---------------------------------------------------------

    def submit(
        self, key: Optional[int] = None, at_us: Optional[float] = None
    ) -> RoutedTransaction:
        """Submit one transaction (by ``key``, or the workload's next
        client key) at simulated ``at_us`` (default: now)."""
        if key is None:
            key = self.workload.next_key()
        shard_id = self.workload.partitioner.shard_of(key)
        when = self.cluster.sim.now if at_us is None else at_us
        record = RoutedTransaction(key=key, shard_id=shard_id,
                                   submitted_at_us=when)
        self.routed += 1
        self.transactions.append(record)
        if self.observer.enabled:
            self.observer.count("router.routed")
            self.observer.event_at(
                when, "router", "txn.submit", key=key, shard=shard_id
            )
        self.cluster.sim.schedule_at(
            when, lambda: self._attempt(record), name="router-submit"
        )
        return record

    # -- the retry/redirect machine -----------------------------------------

    def _attempt(self, record: RoutedTransaction) -> None:
        record.attempts += 1
        entry = self.map.entry(record.shard_id)
        # Snapshot the recorder so the first post-failover completion
        # can find the commit tree this execute call emits (resume link).
        pre_len = (
            len(self.observer.recorder.events)
            if self.observer.enabled else 0
        )
        try:
            self.cluster.execute(
                record.shard_id,
                entry.epoch,
                lambda serving: self.workload.run_on_shard(
                    record.shard_id, serving
                ),
            )
        except StaleShardMapError:
            # Refresh only this shard's entry and redirect at the same
            # instant; the new entry either serves or reports the
            # shard unavailable. Per-entry (not a full snapshot) so
            # one shard's redirect never refreshes another shard's
            # stale entry — the decoupling the per-shard domain
            # decomposition relies on for multi-crash plans.
            self.redirects += 1
            self.map = self.map.with_entry(
                self.cluster.shard_map.entry(record.shard_id)
            )
            if self.observer.enabled:
                self.observer.count("router.redirects")
                self.observer.event(
                    "router", "txn.redirect",
                    shard=record.shard_id, stale_epoch=entry.epoch,
                )
            record.attempts -= 1  # a redirect is not a service attempt
            self._attempt(record)
        except ShardUnavailableError:
            if record.attempts >= self.max_attempts:
                record.dropped = True
                self.dropped += 1
                if self.observer.enabled:
                    self.observer.count("router.dropped")
                    self.observer.event(
                        "router", "txn.drop",
                        shard=record.shard_id, attempts=record.attempts,
                    )
                return
            self.retries += 1
            delay = min(
                self.backoff_us
                * self.backoff_factor ** (record.attempts - 1),
                self.max_backoff_us,
            )
            if self.observer.enabled:
                self.observer.count("router.retries")
                self.observer.event(
                    "router", "txn.retry",
                    shard=record.shard_id, attempt=record.attempts,
                    backoff_us=delay,
                )
            self.cluster.sim.schedule_after(
                delay, lambda: self._attempt(record), name="router-retry"
            )
        else:
            record.completed_at_us = self.cluster.sim.now
            self.completed += 1
            if self.observer.enabled:
                latency = record.completed_at_us - record.submitted_at_us
                self.observer.count("router.completed")
                self.observer.observe("router.latency_us", latency)
                attrs = {
                    "shard": record.shard_id,
                    "latency_us": latency,
                    "attempts": record.attempts,
                }
                # Clusters whose serving scopes are not named "shard.N"
                # (quorum groups) declare them; shard clusters do not,
                # keeping their traces byte-identical.
                scope_name = getattr(self.cluster, "scope_name", None)
                if scope_name is not None:
                    attrs["scope"] = scope_name(record.shard_id)
                self.observer.event("router", "txn.complete", **attrs)
                # First served commit after a failover: emit the
                # recovery.resume instant, causally linked to the
                # recovery span and to this commit's span tree.
                pop_link = getattr(self.cluster, "pop_resume_link", None)
                link = (
                    pop_link(record.shard_id)
                    if pop_link is not None else None
                )
                if link is not None:
                    from repro.obs.recovery import RECOVERY_RESUME
                    from repro.obs.spans import COMMIT_SPAN

                    resume_attrs = {
                        "trace_id": link.trace_id,
                        "parent_id": link.span_id,
                        "shard": record.shard_id,
                    }
                    for event in reversed(
                        self.observer.recorder.events[pre_len:]
                    ):
                        if event.name == COMMIT_SPAN:
                            resume_attrs["commit_trace_id"] = (
                                event.attrs["trace_id"]
                            )
                            break
                    self.observer.event(
                        "router", RECOVERY_RESUME, **resume_attrs
                    )

    # -- reporting ----------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return self.routed - self.completed - self.dropped

    def completions_between(self, start_us: float, stop_us: float) -> int:
        """Transactions whose *completion* fell in ``[start_us, stop_us)``
        — the unit the dip-and-recovery timeline counts."""
        return sum(
            1
            for t in self.transactions
            if t.completed_at_us is not None
            and start_us <= t.completed_at_us < stop_us
        )

    def __repr__(self) -> str:
        return (
            f"Router(routed={self.routed}, completed={self.completed}, "
            f"retries={self.retries}, redirects={self.redirects}, "
            f"dropped={self.dropped})"
        )
