"""Range partitioning of a workload's natural keyspace.

STAR-style partitioned replication (Lu et al.) splits an in-memory
database across nodes along a key that keeps every transaction local
to one partition. The paper's benchmarks have exactly such keys:
Debit-Credit transactions touch one *branch* (plus its tellers and one
of its accounts), Order-Entry transactions one *warehouse*. The
:class:`Partitioner` divides the global key range into contiguous
per-shard sub-ranges so a router can place each transaction with one
integer comparison, and maps between global and shard-local keys.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class KeyRange:
    """One shard's contiguous slice ``[start, stop)`` of the keyspace."""

    shard_id: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def __contains__(self, key: int) -> bool:
        return self.start <= key < self.stop


class Partitioner:
    """Contiguous range partitioning of an integer keyspace.

    Built from the per-shard key counts (how many branches/warehouses
    each shard's database holds); shard ``i`` owns the global keys
    ``[sum(counts[:i]), sum(counts[:i+1]))``.
    """

    def __init__(self, counts: Sequence[int]):
        if not counts:
            raise ConfigurationError("partitioner needs at least one shard")
        self.ranges: List[KeyRange] = []
        cursor = 0
        for shard_id, count in enumerate(counts):
            if count < 1:
                raise ConfigurationError(
                    f"shard {shard_id} owns {count} keys; every shard "
                    f"must own at least one"
                )
            self.ranges.append(KeyRange(shard_id, cursor, cursor + count))
            cursor += count
        self.total_keys = cursor
        self._starts = [r.start for r in self.ranges]

    @property
    def num_shards(self) -> int:
        return len(self.ranges)

    # -- construction helpers ----------------------------------------------

    @classmethod
    def even(cls, total_keys: int, num_shards: int) -> "Partitioner":
        """Split ``total_keys`` as evenly as possible (the first
        ``total_keys % num_shards`` shards take one extra key)."""
        if num_shards < 1:
            raise ConfigurationError("need at least one shard")
        if total_keys < num_shards:
            raise ConfigurationError(
                f"cannot give {num_shards} shards at least one of "
                f"{total_keys} keys"
            )
        base, extra = divmod(total_keys, num_shards)
        return cls([base + (1 if i < extra else 0) for i in range(num_shards)])

    @classmethod
    def for_debit_credit(cls, shard_workloads: Sequence) -> "Partitioner":
        """Partition by branch: shard ``i`` owns the branches of the
        ``i``-th per-shard :class:`DebitCreditWorkload` layout."""
        return cls([w.branches.records for w in shard_workloads])

    @classmethod
    def for_order_entry(cls, shard_workloads: Sequence) -> "Partitioner":
        """Partition by warehouse, read off each shard's layout."""
        return cls([w.warehouse.records for w in shard_workloads])

    # -- key mapping --------------------------------------------------------

    def shard_of(self, key: int) -> int:
        """The shard owning global ``key``."""
        if key < 0 or key >= self.total_keys:
            raise ConfigurationError(
                f"key {key} outside keyspace [0, {self.total_keys})"
            )
        return bisect_right(self._starts, key) - 1

    def to_local(self, key: int) -> Tuple[int, int]:
        """Global key -> (shard_id, shard-local key)."""
        shard_id = self.shard_of(key)
        return shard_id, key - self.ranges[shard_id].start

    def to_global(self, shard_id: int, local_key: int) -> int:
        """(shard_id, shard-local key) -> global key."""
        r = self.ranges[shard_id]
        if local_key < 0 or local_key >= r.size:
            raise ConfigurationError(
                f"local key {local_key} outside shard {shard_id}'s "
                f"{r.size} keys"
            )
        return r.start + local_key

    def __repr__(self) -> str:
        return (
            f"Partitioner({self.num_shards} shards, "
            f"{self.total_keys} keys)"
        )
