"""N independent primary-backup pairs behind one shard map.

A :class:`ShardedCluster` wires ``num_shards``
:class:`~repro.cluster.cluster.ReplicatedCluster` pairs onto a single
shared :class:`~repro.sim.engine.Simulator`: every pair keeps its own
heartbeat monitor, membership view and takeover path, so one shard's
primary crash triggers exactly one failover while the other shards
keep serving — the availability composition that turns the paper's
two-node story into a scale-out system. The cluster also maintains:

* a cluster-wide :class:`~repro.cluster.membership.Membership` over
  all ``2 * num_shards`` nodes (the N-member view machinery), and
* the authoritative :class:`~repro.shard.shardmap.ShardMap`, whose
  per-shard epochs fence requests routed with a stale view.

Requests enter through :meth:`execute`, which performs the server-side
checks a real shard server would: epoch fencing first, then
availability. Routers translate the resulting errors into redirects
and retries.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List, Optional

from repro.cluster.cluster import ReplicatedCluster, TakeoverReport
from repro.cluster.membership import Membership
from repro.errors import ConfigurationError, ShardUnavailableError
from repro.obs.observer import resolve_observer
from repro.shard.shardmap import ShardMap
from repro.shard.workload import ShardedWorkload
from repro.sim.engine import Simulator
from repro.sim.events import SHAPE_SHARED, default_event_queue
from repro.vista.api import EngineConfig


class ShardedCluster:
    """``num_shards`` replicated pairs serving one logical database.

    Args:
        num_shards: how many primary-backup pairs to run.
        mode / version / config: forwarded to every pair (see
            :class:`~repro.cluster.cluster.ReplicatedCluster`); the
            config sizes *one shard's* database, not the whole thing.
        heartbeat_interval_us / heartbeat_timeout_us /
        restore_bytes_per_us: per-pair failure-detection and takeover
            parameters, shared by all pairs.
        active_shards: which shards actually instantiate their pair.
            Defaults to all of them. The parallel per-shard executor
            (:mod:`repro.fastpath.shardpar`) builds one cluster per
            shard with ``active_shards={k}``: the dormant entries keep
            their shard-map rows and their membership seats — so the
            shard map, routing epochs and the cluster-wide view are
            byte-identical with the full cluster — but allocate no
            engines, links or heartbeat chains.
        queue: event-queue override for the shared simulator (the
            parallel executor injects a recording wrapper); defaults
            to the shared-shape queue.
    """

    def __init__(
        self,
        num_shards: int,
        mode: str = "active",
        version: str = "v3",
        config: Optional[EngineConfig] = None,
        heartbeat_interval_us: float = 1_000.0,
        heartbeat_timeout_us: float = 5_000.0,
        restore_bytes_per_us: float = 300.0,
        observer=None,
        active_shards=None,
        queue=None,
    ):
        if num_shards < 1:
            raise ConfigurationError("need at least one shard")
        self.num_shards = num_shards
        if active_shards is None:
            self.active_shards = frozenset(range(num_shards))
        else:
            self.active_shards = frozenset(active_shards)
            if not self.active_shards:
                raise ConfigurationError("need at least one active shard")
            if not self.active_shards <= set(range(num_shards)):
                raise ConfigurationError(
                    f"active shards {sorted(self.active_shards)} not all in "
                    f"cluster of {num_shards}"
                )
        self.observer = resolve_observer(observer)
        # Heartbeat chains across 2N nodes collide on exact
        # timestamps constantly: the shared-shape (wheel) queue.
        self.sim = Simulator(
            observer=self.observer,
            queue=default_event_queue(SHAPE_SHARED) if queue is None else queue,
        )
        self.shard_map = ShardMap()
        self.pairs: List[Optional[ReplicatedCluster]] = []
        #: Per-shard scoped views of the observer ("shard.N.…" names).
        self.shard_observers = [
            self.observer.scoped(f"shard.{shard_id}")
            for shard_id in range(num_shards)
        ]
        node_names: List[str] = []
        for shard_id in range(num_shards):
            primary = f"shard{shard_id}/primary"
            backup = f"shard{shard_id}/backup"
            if shard_id in self.active_shards:
                pair = ReplicatedCluster(
                    mode=mode,
                    version=version,
                    config=config,
                    heartbeat_interval_us=heartbeat_interval_us,
                    heartbeat_timeout_us=heartbeat_timeout_us,
                    restore_bytes_per_us=restore_bytes_per_us,
                    sim=self.sim,
                    primary_name=primary,
                    backup_name=backup,
                    on_failover=functools.partial(
                        self._pair_failed_over, shard_id
                    ),
                    observer=self.shard_observers[shard_id],
                )
            else:
                pair = None
            self.pairs.append(pair)
            self.shard_map.add_shard(primary, backup)
            node_names.extend((primary, backup))
        #: The resolved per-shard engine config (identical across pairs).
        self.config = next(p for p in self.pairs if p is not None).config
        #: Cluster-wide view of every node; the most senior surviving
        #: node is the (purely administrative) cluster coordinator.
        self.membership = Membership(
            members=node_names, primary=node_names[0], observer=self.observer
        )

    # -- setup --------------------------------------------------------------

    def setup(self, workload: ShardedWorkload) -> None:
        """Initialize every shard's database and ship the initial
        images to the backups."""
        if workload.num_shards != self.num_shards:
            raise ConfigurationError(
                f"workload spans {workload.num_shards} shards, "
                f"cluster has {self.num_shards}"
            )
        for shard_id, pair in enumerate(self.pairs):
            if pair is None:
                continue
            workload.shards[shard_id].setup(pair.system)
            pair.system.sync_initial()

    # -- serving ------------------------------------------------------------

    def serving(self, shard_id: int):
        """The object currently serving shard ``shard_id``."""
        return self._pair(shard_id).serving

    def available(self, shard_id: int) -> bool:
        return self._pair(shard_id).is_available

    def execute(self, shard_id: int, epoch: int, request: Callable) -> object:
        """Run ``request(serving)`` on the shard, with server-side checks.

        Raises :class:`~repro.errors.StaleShardMapError` when the
        caller's routing epoch predates the shard's current view, and
        :class:`~repro.errors.ShardUnavailableError` while the shard is
        mid-failover.
        """
        self.shard_map.check_epoch(shard_id, epoch)
        pair = self._pair(shard_id)
        if not pair.is_available:
            raise ShardUnavailableError(shard_id)
        return request(pair.serving)

    # -- failure ------------------------------------------------------------

    def schedule_primary_crash(self, shard_id: int, at_us: float) -> None:
        """Crash shard ``shard_id``'s primary at simulated ``at_us``."""
        self._pair(shard_id).schedule_primary_crash(at_us)

    def _pair_failed_over(self, shard_id: int, pair: ReplicatedCluster) -> None:
        """One pair's takeover completed: update the global views."""
        self.shard_map.fail_over(shard_id)
        self.membership.fail(pair.primary_node.name)
        report = pair.takeover
        if report is not None:
            restore_at = max(report.service_restored_at_us, self.sim.now)
            self.sim.schedule_at(
                restore_at,
                functools.partial(self._mark_restored, shard_id),
                name=f"shard{shard_id}-restored",
            )

    def _mark_restored(self, shard_id: int) -> None:
        self.shard_map.mark_restored(shard_id)
        shard_observer = self.shard_observers[shard_id]
        if shard_observer.enabled:
            shard_observer.event(
                "cluster", "service.restored",
                epoch=self.shard_map.entry(shard_id).epoch,
            )

    def pop_resume_link(self, shard_id: int):
        """Consume the shard's pending recovery link, if any.

        The router calls this after the first served commit following a
        failover, to causally link its ``recovery.resume`` instant back
        to the recovery span. Direct list access: dormant shards (the
        parallel executor's inactive entries) simply have no link.
        """
        pair = self.pairs[shard_id]
        if pair is None:
            return None
        link, pair.last_recovery_link = pair.last_recovery_link, None
        return link

    # -- progress -----------------------------------------------------------

    def run_until(self, until_us: float) -> None:
        self.sim.run(until=until_us)

    @property
    def takeovers(self) -> Dict[int, TakeoverReport]:
        """Per-shard takeover reports for every shard that failed over."""
        return {
            shard_id: pair.takeover
            for shard_id, pair in enumerate(self.pairs)
            if pair is not None and pair.takeover is not None
        }

    def _pair(self, shard_id: int) -> ReplicatedCluster:
        if shard_id < 0 or shard_id >= self.num_shards:
            raise ConfigurationError(
                f"shard {shard_id} not in cluster of {self.num_shards}"
            )
        pair = self.pairs[shard_id]
        if pair is None:
            raise ConfigurationError(
                f"shard {shard_id} is dormant in this domain "
                f"(active: {sorted(self.active_shards)})"
            )
        return pair

    def __repr__(self) -> str:
        failed = sum(
            1 for p in self.pairs if p is not None and p.takeover is not None
        )
        return (
            f"ShardedCluster({self.num_shards} shards, "
            f"{failed} failed over, map epoch {self.shard_map.epoch})"
        )
