"""Sharding: N primary-backup pairs serving one logical database.

The paper stops at a single replicated pair. This package adds the
layer that makes the design scale out, following the shape of
partitioned replicated in-memory databases (STAR, Lu et al.;
fault-tolerant partial replication, Sutra & Shapiro):

* :mod:`repro.shard.partitioner` — contiguous range partitioning of a
  workload's natural key (Debit-Credit branches, Order-Entry
  warehouses);
* :mod:`repro.shard.shardmap` — the versioned shard map whose
  per-shard epochs fence requests routed with a stale view;
* :mod:`repro.shard.workload` — a paper benchmark split across N
  shard-local databases plus the client-side key stream;
* :mod:`repro.shard.cluster` — N
  :class:`~repro.cluster.cluster.ReplicatedCluster` pairs on one
  shared simulator, each with independent detection and takeover;
* :mod:`repro.shard.router` — the client router: key -> shard, with
  epoch-refresh redirects and exponential-backoff retries while a
  shard fails over.
"""

from repro.shard.cluster import ShardedCluster
from repro.shard.partitioner import KeyRange, Partitioner
from repro.shard.router import RoutedTransaction, Router
from repro.shard.shardmap import (
    STATUS_DEGRADED,
    STATUS_FAILING_OVER,
    STATUS_UP,
    ShardInfo,
    ShardMap,
    ShardMapSnapshot,
)
from repro.shard.workload import ShardedWorkload

__all__ = [
    "KeyRange",
    "Partitioner",
    "RoutedTransaction",
    "Router",
    "STATUS_DEGRADED",
    "STATUS_FAILING_OVER",
    "STATUS_UP",
    "ShardInfo",
    "ShardMap",
    "ShardMapSnapshot",
    "ShardedCluster",
    "ShardedWorkload",
]
