"""Plain-text table and figure formatting for experiment output.

Every experiment prints the same rows/series the paper reports, side
by side with the paper's numbers and the measured/paper ratio, so the
*shape* claims (who wins, by what factor) are auditable at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence


@dataclass
class ReportTable:
    """An aligned, plain-text table."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(cell) for cell in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            column.ljust(widths[index]) for index, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[index]) if index else cell.ljust(widths[index])
                          for index, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def ratio(measured: float, paper: float) -> str:
    """measured/paper as a compact string ('-' when undefined)."""
    if paper == 0:
        return "-"
    return f"{measured / paper:.2f}x"


def ascii_series(
    title: str,
    x_values: Sequence[object],
    series: Iterable[tuple],
    width: int = 48,
) -> str:
    """A small text rendering of a figure: one row per (label, ys)
    series with a proportional bar per point — enough to eyeball the
    scaling shapes of Figures 2 and 3 in a terminal."""
    series = list(series)
    peak = max(
        (y for _label, ys in series for y in ys), default=1.0
    ) or 1.0
    lines = [title, "=" * len(title)]
    for label, ys in series:
        lines.append(label)
        for x, y in zip(x_values, ys):
            bar = "#" * max(1, int(width * y / peak))
            lines.append(f"  {str(x):>4}  {y:>12,.0f}  {bar}")
    return "\n".join(lines)
