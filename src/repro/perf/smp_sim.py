"""Discrete-event validation of the SMP shared-link model.

The throughput estimator caps SMP aggregate throughput at
``min(n * single_stream, link_capacity)`` (Section 8). That closed
form ignores queueing: streams post writes into finite write buffers
and stall when the shared link backs up. This module simulates the
contention directly — n transaction streams, each alternating CPU
work and posted packet bursts, sharing one FIFO link server with
per-stream write-buffer backpressure — and the tests hold the closed
form to the simulation within a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.hardware.specs import SanSpec, MEMORY_CHANNEL_II
from repro.san.packets import PacketTrace
from repro.sim.engine import Simulator
from repro.sim.process import Process, sleep, wait_for

#: Per-CPU posted-write capacity: six 32-byte write buffers.
WRITE_BUFFER_BYTES = 6 * 32


@dataclass
class _Stream:
    """One transaction stream's simulation state."""

    index: int
    completed: int = 0
    outstanding_bytes: int = 0
    stalled_us: float = 0.0


class _LinkServer:
    """A FIFO link: packets drain one at a time at the SAN's rate."""

    def __init__(self, sim: Simulator, san: SanSpec):
        self.sim = sim
        self.san = san
        self.queue: List[tuple] = []  # (size, stream)
        self.busy = False
        self.busy_us = 0.0

    def submit(self, size: int, stream: _Stream) -> None:
        stream.outstanding_bytes += size
        self.queue.append((size, stream))
        if not self.busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self.queue:
            self.busy = False
            return
        self.busy = True
        size, stream = self.queue.pop(0)
        service = self.san.packet_time_us(size)
        self.busy_us += service

        def complete():
            stream.outstanding_bytes -= size
            self._start_next()

        self.sim.schedule_after(service, complete, name="link")


def packet_sequence(trace: PacketTrace, transactions: int) -> List[List[int]]:
    """Distribute a run's packet histogram over its transactions as a
    deterministic per-transaction packet list (repeated cyclically by
    the simulation)."""
    if transactions <= 0:
        raise ValueError("need at least one transaction")
    flat: List[int] = []
    for size in sorted(trace.histogram):
        flat.extend([size] * int(round(trace.histogram[size])))
    if not flat:
        return [[] for _ in range(transactions)]
    per_txn: List[List[int]] = [[] for _ in range(transactions)]
    for position, size in enumerate(flat):
        per_txn[position % transactions].append(size)
    return per_txn


@dataclass
class SmpSimulationResult:
    processors: int
    simulated_us: float
    per_stream_completed: List[int]
    link_busy_us: float

    @property
    def aggregate_tps(self) -> float:
        return sum(self.per_stream_completed) / self.simulated_us * 1e6

    @property
    def link_utilization(self) -> float:
        return self.link_busy_us / self.simulated_us


def simulate_smp(
    txn_cpu_us: float,
    txn_packets: List[List[int]],
    processors: int,
    duration_us: float = 20_000.0,
    san: SanSpec = MEMORY_CHANNEL_II,
    buffer_bytes: int = WRITE_BUFFER_BYTES,
) -> SmpSimulationResult:
    """Simulate ``processors`` independent streams sharing one link.

    Each stream repeatedly: computes for ``txn_cpu_us``; posts its
    transaction's packets (cycled from ``txn_packets``); and stalls
    only if its posted-but-undrained bytes exceed the write-buffer
    capacity — the posted-write semantics of the Memory Channel.
    """
    if processors < 1:
        raise ValueError("need at least one processor")
    sim = Simulator()
    link = _LinkServer(sim, san)
    streams = [_Stream(index) for index in range(processors)]

    def stream_proc(stream: _Stream):
        cursor = stream.index  # desynchronize the streams slightly
        while True:
            yield sleep(txn_cpu_us)
            packets = txn_packets[cursor % len(txn_packets)] if txn_packets else []
            cursor += 1
            for size in packets:
                link.submit(size, stream)
            if stream.outstanding_bytes > buffer_bytes:
                stall_start = sim.now
                yield wait_for(
                    lambda s=stream: s.outstanding_bytes <= buffer_bytes,
                    poll=0.05,
                )
                stream.stalled_us += sim.now - stall_start
            stream.completed += 1

    for stream in streams:
        Process(sim, stream_proc(stream), name=f"stream-{stream.index}")
    sim.run(until=duration_us)
    return SmpSimulationResult(
        processors=processors,
        simulated_us=duration_us,
        per_stream_completed=[stream.completed for stream in streams],
        link_busy_us=link.busy_us,
    )


def simulate_from_run(result, cpu_us: float, processors: int,
                      duration_us: float = 20_000.0,
                      san: SanSpec = MEMORY_CHANNEL_II) -> SmpSimulationResult:
    """Convenience: build the packet schedule from a measured
    :class:`~repro.workloads.driver.RunResult` and simulate."""
    per_txn = packet_sequence(result.packet_trace, result.transactions)
    return simulate_smp(cpu_us, per_txn, processors, duration_us, san)
