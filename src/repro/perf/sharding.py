"""Aggregate throughput of N replicated pairs sharing (or not) a SAN.

Two deployments bracket what a sharded cluster can deliver:

* **dedicated links** — each pair owns its Memory Channel segment, so
  pairs never contend and aggregate throughput is ``n x`` the single
  pair's rate: the near-linear scaling disjoint shards promise.
* **one shared SAN** — every pair's replication stream crosses the
  same link (the cheapest wiring). The link is a serial resource; the
  cap follows from the per-transaction packet mix exactly as in the
  SMP experiments, computed here by attaching each pair's per-
  transaction :class:`~repro.san.packets.PacketTrace` to a
  :class:`~repro.san.link.SharedLink`.

Both numbers come from the same calibrated single-pair
:class:`~repro.perf.throughput.ThroughputReport` the two-node
experiments already produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.hardware.specs import SanSpec, MEMORY_CHANNEL_II
from repro.perf.throughput import ThroughputReport
from repro.san.link import SharedLink
from repro.san.packets import PacketTrace

US_PER_SECOND = 1e6


@dataclass
class ShardedThroughputReport:
    """Aggregate throughput of ``shards`` identical pairs."""

    shards: int
    per_pair_tps: float
    link_us_per_txn: float
    dedicated_tps: float
    shared_san_tps: float
    shared_san_utilization: float

    @property
    def dedicated_speedup(self) -> float:
        return self.dedicated_tps / self.per_pair_tps

    def degraded_tps(self, failed_shards: int = 1,
                     dedicated: bool = True) -> float:
        """Aggregate rate while ``failed_shards`` shards are mid-failover
        and contribute nothing: the dip floor of the availability
        timeline (roughly ``(n-k)/n`` of normal)."""
        if failed_shards < 0 or failed_shards > self.shards:
            raise ConfigurationError(
                f"{failed_shards} failed of {self.shards} shards"
            )
        total = self.dedicated_tps if dedicated else self.shared_san_tps
        return total * (self.shards - failed_shards) / self.shards


def sharded_aggregate(
    single: ThroughputReport,
    shards: int,
    san: SanSpec = MEMORY_CHANNEL_II,
    per_txn_trace: Optional[PacketTrace] = None,
) -> ShardedThroughputReport:
    """Compose one pair's report into an N-pair aggregate.

    Args:
        single: the calibrated single-pair throughput report.
        shards: number of identical pairs.
        san: the SAN the shared-link variant funnels through.
        per_txn_trace: the pair's measured per-transaction packet
            trace; when given, the shared-SAN cap is computed from the
            actual packet-size mix on a :class:`SharedLink` (4-byte
            packets cost far more than their bytes suggest). Without
            it, the report's scalar ``link_us`` is used.
    """
    if shards < 1:
        raise ConfigurationError("need at least one shard")
    dedicated = shards * single.tps

    if per_txn_trace is not None and per_txn_trace.packets:
        link = SharedLink(san)
        for _ in range(shards):
            link.attach(per_txn_trace)
        # One transaction from each pair must drain through the link.
        round_us = link.total_link_time_us()
        link_us = round_us / shards
    else:
        link_us = single.link_us

    if link_us <= 0:
        return ShardedThroughputReport(
            shards=shards,
            per_pair_tps=single.tps,
            link_us_per_txn=0.0,
            dedicated_tps=dedicated,
            shared_san_tps=dedicated,
            shared_san_utilization=0.0,
        )

    capacity_tps = US_PER_SECOND / link_us
    shared = min(dedicated, capacity_tps)
    utilization = min(1.0, dedicated * link_us / US_PER_SECOND)
    return ShardedThroughputReport(
        shards=shards,
        per_pair_tps=single.tps,
        link_us_per_txn=link_us,
        dedicated_tps=dedicated,
        shared_san_tps=shared,
        shared_san_utilization=utilization,
    )
