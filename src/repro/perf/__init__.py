"""The performance model.

The paper's numbers come from real Alpha/Memory Channel hardware; this
package reproduces them by converting *measured operation counts* from
the functional implementation into simulated hardware time:

* :mod:`repro.perf.calibration` — the hardware cost constants and how
  they were derived from the paper's own microbenchmarks.
* :mod:`repro.perf.costmodel` — operation counts -> CPU time, cache
  stall time, and SAN link time per transaction.
* :mod:`repro.perf.throughput` — transaction time and throughput for
  standalone, passive-backup, active-backup and SMP-primary
  configurations.
* :mod:`repro.perf.report` — table/figure formatting with
  paper-versus-measured columns.
* :mod:`repro.perf.sharding` — aggregate throughput of N replicated
  pairs with dedicated links or one shared SAN.
"""

from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION, PAPER
from repro.perf.costmodel import CostBreakdown, CostModel
from repro.perf.sharding import ShardedThroughputReport, sharded_aggregate
from repro.perf.throughput import ThroughputEstimator, ThroughputReport

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "PAPER",
    "CostModel",
    "CostBreakdown",
    "ShardedThroughputReport",
    "sharded_aggregate",
    "ThroughputEstimator",
    "ThroughputReport",
]
