"""Throughput estimation for every configuration the paper measures.

The estimator composes the cost model:

* **standalone** — transaction time is pure primary CPU time (compute
  plus cache stalls); there is no SAN.
* **passive backup** — the primary additionally issues the doubled
  I/O-space stores; the resulting packet stream occupies the link.
  Posted writes overlap with computation imperfectly (the ``overlap``
  calibration constant), so the transaction time is
  ``max(cpu, link) + overlap * min(cpu, link)``.
* **active backup** — the primary's extra work is building and
  publishing redo records; the link carries only the redo stream. The
  backup's apply time runs concurrently and only matters if it exceeds
  the primary's transaction time (it never does in practice, matching
  the paper's "it can easily keep up").
* **SMP primary** — n independent streams share one link: aggregate
  throughput is the smaller of n times the single-stream rate and the
  link's carrying capacity for that protocol's packet mix (Section 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION, PAPER
from repro.perf.costmodel import CostBreakdown, CostModel
from repro.workloads.driver import RunResult

US_PER_SECOND = 1e6


@dataclass
class ThroughputReport:
    """A throughput estimate and the pieces it was computed from."""

    mode: str
    txn_time_us: float
    tps: float
    cpu_us: float
    link_us: float
    breakdown: CostBreakdown
    backup_cpu_us: float = 0.0

    @staticmethod
    def from_time(mode: str, txn_time_us: float, breakdown: CostBreakdown,
                  cpu_us: float, link_us: float,
                  backup_cpu_us: float = 0.0) -> "ThroughputReport":
        return ThroughputReport(
            mode=mode,
            txn_time_us=txn_time_us,
            tps=US_PER_SECOND / txn_time_us,
            cpu_us=cpu_us,
            link_us=link_us,
            breakdown=breakdown,
            backup_cpu_us=backup_cpu_us,
        )


class ThroughputEstimator:
    """Turns driven :class:`RunResult` s into throughput numbers."""

    def __init__(self, calibration: Calibration = DEFAULT_CALIBRATION):
        self.calibration = calibration
        self.model = CostModel(calibration)

    # -- single-stream configurations ------------------------------------------

    def standalone(self, result: RunResult) -> ThroughputReport:
        breakdown = self.model.breakdown(result)
        cpu = breakdown.cpu.total_us() + breakdown.cache_stall_us
        return ThroughputReport.from_time(
            "standalone", cpu, breakdown, cpu_us=cpu, link_us=0.0
        )

    def passive(self, result: RunResult) -> ThroughputReport:
        breakdown = self.model.breakdown(result)
        cpu = breakdown.cpu_total_us
        link = breakdown.link_time_us
        txn_time = self.model.combine_cpu_and_link(cpu, link)
        return ThroughputReport.from_time(
            "passive", txn_time, breakdown, cpu_us=cpu, link_us=link
        )

    def active(self, result: RunResult, two_safe: bool = False) -> ThroughputReport:
        breakdown = self.model.breakdown(result)
        txns = max(1, result.transactions)
        per_txn = result.counters.per_transaction()
        records_per_txn = self._redo_records_per_txn(result)
        payload_per_txn = per_txn["db_bytes_written"]
        redo_cpu = self.model.redo_cpu_us(result, records_per_txn, payload_per_txn)
        # The engine's own work (V3 locally) plus redo construction; the
        # I/O-issue cost is already measured from the ring stores.
        cpu = (
            breakdown.cpu.total_us()
            + breakdown.cache_stall_us
            + breakdown.io_issue_us
            + redo_cpu
        )
        if two_safe:
            cpu += (
                self.calibration.two_safe_ack_us
                + 2.0 * self.calibration.san.latency_us
            )
        # Consumer-pointer acks ride the link's reverse path (the
        # Memory Channel is full duplex), so only the redo stream
        # occupies the forward direction.
        link = breakdown.link_time_us
        backup_cpu = self.model.backup_apply_us(records_per_txn, payload_per_txn)
        txn_time = self.model.combine_cpu_and_link(cpu, link)
        # The backup applies concurrently; it binds only if slower.
        txn_time = max(txn_time, backup_cpu)
        return ThroughputReport.from_time(
            "active", txn_time, breakdown, cpu_us=cpu, link_us=link,
            backup_cpu_us=backup_cpu,
        )

    def _redo_records_per_txn(self, result: RunResult) -> float:
        redo = getattr(result, "redo_records", None)
        if redo is not None:
            return redo / max(1, result.transactions)
        # Fall back to the coalesced write count: one record per write
        # extent; db_writes is an upper bound.
        return result.counters.db_writes / max(1, result.transactions)

    # -- SMP primary (Section 8) ---------------------------------------------------

    def smp_aggregate(
        self, single: ThroughputReport, processors: int
    ) -> float:
        """Aggregate transactions/second with ``processors`` independent
        streams sharing one Memory Channel link."""
        if processors < 1:
            raise ValueError("need at least one processor")
        if single.link_us <= 0:
            return processors * single.tps
        link_capacity_tps = US_PER_SECOND / single.link_us
        return min(processors * single.tps, link_capacity_tps)

    # -- calibration anchoring -------------------------------------------------------

def calibrate_bases(
    estimator_calibration: Calibration,
    v3_standalone_results: Dict[str, RunResult],
    targets: Optional[Dict[str, float]] = None,
) -> Calibration:
    """Solve the per-benchmark base cost so that Version 3's standalone
    throughput matches Table 3 (the only fitted throughput numbers; all
    other rows are predictions).

    Args:
        v3_standalone_results: workload name -> RunResult of a V3
            standalone run at the paper's 50 MB nominal size.
        targets: workload name -> target transactions/second; defaults
            to the paper's Table 3 Version 3 row.
    """
    if targets is None:
        targets = {
            workload: PAPER["standalone"][workload]["v3"]
            for workload in v3_standalone_results
        }
    model = CostModel(estimator_calibration)
    bases = {}
    for workload, result in v3_standalone_results.items():
        target_us = US_PER_SECOND / targets[workload]
        breakdown = model.breakdown(result)
        charged = (
            breakdown.cpu.total_us()
            - breakdown.cpu["base"]
            + breakdown.cache_stall_us
        )
        bases[workload] = max(0.1, target_us - charged)
    return estimator_calibration.with_bases(bases)
