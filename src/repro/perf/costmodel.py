"""Operation counts -> simulated hardware time.

The :class:`CostModel` converts a :class:`~repro.workloads.driver.RunResult`
(operation counters, access profile, packet trace) into per-transaction
CPU time, cache-stall time and SAN link time, each broken down by
component so the paper's qualitative arguments are visible in the
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cache import AnalyticCacheModel
from repro.hardware.cpu import CostAccumulator
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.workloads.driver import RunResult


@dataclass
class CostBreakdown:
    """Per-transaction time, split into its sources."""

    cpu: CostAccumulator
    cache_stall_us: float
    link_time_us: float
    io_issue_us: float

    @property
    def cpu_total_us(self) -> float:
        """All primary-CPU time per transaction (compute + stalls +
        I/O-space store issue)."""
        return self.cpu.total_us() + self.cache_stall_us + self.io_issue_us


class CostModel:
    """Applies a :class:`Calibration` to measured run results."""

    def __init__(self, calibration: Calibration = DEFAULT_CALIBRATION):
        self.calibration = calibration
        self.cache = AnalyticCacheModel(
            calibration.machine.board_cache,
            conflict_floor=calibration.conflict_floor,
        )

    # -- pieces ---------------------------------------------------------------

    def engine_cpu_us(self, result: RunResult) -> CostAccumulator:
        """Per-transaction CPU compute time of the engine + benchmark."""
        c = self.calibration
        per_txn = result.counters.per_transaction()
        acc = CostAccumulator()
        acc.charge("base", c.txn_base_us.get(result.workload, 2.0))
        acc.charge("set_range", per_txn["set_ranges"] * c.set_range_us)
        acc.charge(
            "db_write",
            per_txn["db_writes"] * c.db_write_us
            + per_txn["db_bytes_written"] * c.write_byte_us,
        )
        acc.charge("undo_copy", per_txn["undo_bytes_copied"] * c.copy_byte_us)
        acc.charge("compare", per_txn["bytes_compared"] * c.compare_byte_us)
        acc.charge(
            "heap",
            per_txn["mallocs"] * c.malloc_us + per_txn["frees"] * c.free_us,
        )
        acc.charge(
            "list",
            per_txn["list_ops"] * c.list_op_us
            + per_txn["walk_steps"] * c.walk_step_us,
        )
        acc.charge(
            "alloc_fast",
            per_txn["bump_allocs"] * c.bump_alloc_us
            + per_txn["array_pushes"] * c.array_push_us,
        )
        return acc

    def cache_stall_us(self, result: RunResult) -> float:
        """Per-transaction stall time from the analytic cache model."""
        profile = result.profile_per_txn()
        stall = 0.0
        for name, lines in profile.random_lines.items():
            working_set = profile.working_set_bytes.get(name, 0)
            stall += self.cache.miss_time_us(working_set, lines)
        for _name, nbytes in profile.sequential_bytes.items():
            stall += self.cache.sequential_miss_time_us(nbytes)
        return stall

    def io_issue_us(self, result: RunResult) -> float:
        """Per-transaction CPU cost of issuing I/O-space stores (the
        second half of every doubled write, or the redo-ring stores)."""
        c = self.calibration
        txns = max(1, result.transactions)
        return (
            result.io_stores / txns * c.io_store_us
            + result.total_traffic_bytes / txns * c.io_byte_us
        )

    def link_time_us(self, result: RunResult) -> float:
        """Per-transaction SAN link occupancy from the packet trace."""
        if result.packet_trace is None:
            return 0.0
        per_txn = result.packets_per_txn()
        return per_txn.link_time_us(self.calibration.san)

    def redo_cpu_us(self, result: RunResult, records_per_txn: float,
                    payload_bytes_per_txn: float) -> float:
        """Extra primary CPU for building and publishing redo records."""
        c = self.calibration
        return (
            records_per_txn * c.redo_record_us
            + payload_bytes_per_txn * c.redo_byte_us
            + c.publish_us
        )

    def backup_apply_us(self, records_per_txn: float,
                        payload_bytes_per_txn: float) -> float:
        """Backup CPU per transaction in the active scheme."""
        c = self.calibration
        return (
            records_per_txn * c.apply_record_us
            + payload_bytes_per_txn * c.apply_byte_us
        )

    # -- composition --------------------------------------------------------------

    def breakdown(self, result: RunResult) -> CostBreakdown:
        return CostBreakdown(
            cpu=self.engine_cpu_us(result),
            cache_stall_us=self.cache_stall_us(result),
            link_time_us=self.link_time_us(result),
            io_issue_us=self.io_issue_us(result),
        )

    def combine_cpu_and_link(self, cpu_us: float, link_us: float) -> float:
        """Per-transaction time when computation and posted I/O-space
        writes overlap imperfectly: the longer of the two plus the
        un-hidden ``overlap`` fraction of the shorter."""
        longer = max(cpu_us, link_us)
        shorter = min(cpu_us, link_us)
        return longer + self.calibration.overlap * shorter
