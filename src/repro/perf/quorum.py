"""Traffic and availability cost model for leaderless quorum groups.

The paper's cost story is a two-node one: passive backup ships diffs
to one mirror, active backup ships operations. A leaderless N-replica
group (:mod:`repro.quorum`) changes both sides of the ledger at once:

* **Traffic** — every write is stored N times, so N-1 copies cross the
  wire (hinted copies included: a hint is a copy parked one hop away),
  and a quorum read pulls R-1 remote responses where a primary serves
  reads locally. Replication traffic therefore scales with the quorum
  geometry, not with the workload alone.
* **Availability** — with independent per-replica availability ``a``,
  a strict group serves while at least ``max(R, W)`` replicas are up
  and a sloppy group while at least one is, so group availability is
  the binomial tail. This is the steady-state number; the failover
  *windows* that separate a quorum group from a primary-backup pair
  under the same crash schedule are measured from traces by the
  ``quorum`` extension experiment, not modeled here.

The same report shape describes a primary-backup pair (N=2, one copy
shipped, local reads), which is what makes the three architectures
comparable row by row in one table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


def binomial_availability(
    replicas: int, needed: int, replica_availability: float
) -> float:
    """P(at least ``needed`` of ``replicas`` independent replicas up).

    The classic k-of-n availability tail: each replica is up with
    probability ``replica_availability`` independently.
    """
    if replicas < 1:
        raise ConfigurationError("need at least one replica")
    if not 0.0 <= replica_availability <= 1.0:
        raise ConfigurationError(
            f"replica availability {replica_availability} outside [0, 1]"
        )
    if needed <= 0:
        return 1.0
    if needed > replicas:
        return 0.0
    a = replica_availability
    return sum(
        math.comb(replicas, k) * a**k * (1.0 - a) ** (replicas - k)
        for k in range(needed, replicas + 1)
    )


@dataclass(frozen=True)
class QuorumCostReport:
    """Steady-state cost of one (N, R, W) quorum configuration."""

    label: str
    replicas: int
    read_quorum: int
    write_quorum: int
    sloppy: bool
    replica_availability: float
    record_bytes: int
    availability: float
    write_bytes_per_txn: float
    read_bytes_per_txn: float

    @property
    def mode(self) -> str:
        return "sloppy" if self.sloppy else "strict"

    @property
    def intersects(self) -> bool:
        """Whether every read quorum meets every write quorum (the
        R + W > N condition behind read-latest)."""
        return self.read_quorum + self.write_quorum > self.replicas

    @property
    def copies_stored(self) -> int:
        """Durable copies of every write (the storage amplification)."""
        return self.replicas

    @property
    def unavailability(self) -> float:
        return 1.0 - self.availability

    def traffic_ratio(self, baseline: "QuorumCostReport") -> float:
        """This configuration's total per-transaction wire bytes as a
        multiple of ``baseline``'s (one read + one write each)."""
        mine = self.write_bytes_per_txn + self.read_bytes_per_txn
        theirs = baseline.write_bytes_per_txn + baseline.read_bytes_per_txn
        if theirs == 0:
            raise ConfigurationError("baseline ships no bytes")
        return mine / theirs


def quorum_cost(
    replicas: int,
    read_quorum: int,
    write_quorum: int,
    replica_availability: float,
    record_bytes: int,
    sloppy: bool = False,
    label: str = "",
) -> QuorumCostReport:
    """Cost one (N, R, W) configuration.

    A strict group needs ``max(R, W)`` reachable replicas to run the
    read-modify-write transactions the benchmarks issue; a sloppy group
    runs on any live replica (hints stand in for the missing copies).
    """
    if not 1 <= read_quorum <= replicas:
        raise ConfigurationError(
            f"read quorum {read_quorum} outside [1, {replicas}]"
        )
    if not 1 <= write_quorum <= replicas:
        raise ConfigurationError(
            f"write quorum {write_quorum} outside [1, {replicas}]"
        )
    if record_bytes < 1:
        raise ConfigurationError("records must carry at least one byte")
    needed = 1 if sloppy else max(read_quorum, write_quorum)
    availability = binomial_availability(
        replicas, needed, replica_availability
    )
    return QuorumCostReport(
        label=label or f"quorum {replicas}/{read_quorum}/{write_quorum}",
        replicas=replicas,
        read_quorum=read_quorum,
        write_quorum=write_quorum,
        sloppy=sloppy,
        replica_availability=replica_availability,
        record_bytes=record_bytes,
        availability=availability,
        write_bytes_per_txn=float((replicas - 1) * record_bytes),
        read_bytes_per_txn=float((read_quorum - 1) * record_bytes),
    )


def primary_backup_cost(
    replica_availability: float, record_bytes: int
) -> QuorumCostReport:
    """The two-node pair in the same report shape: one shipped copy
    per write, local reads, up while either node is (the steady-state
    view — the pair's failover window is a trace-measured cost the
    model deliberately leaves out)."""
    return QuorumCostReport(
        label="primary-backup pair",
        replicas=2,
        read_quorum=1,
        write_quorum=1,
        sloppy=False,
        replica_availability=replica_availability,
        record_bytes=record_bytes,
        availability=binomial_availability(2, 1, replica_availability),
        write_bytes_per_txn=float(record_bytes),
        read_bytes_per_txn=0.0,
    )
