"""Calibration constants for the performance model.

Philosophy: the *protocols* are measured (operation counts, byte
counts, packet traces come from the real implementation in this
repository); only the *hardware* is modelled, by the constants below.
Each constant is anchored to something the paper reports directly:

* The SAN packet-cost curve (``per_packet_overhead_us``, raw
  bandwidth) is fitted to Figure 1's endpoints: 14 MB/s at 4-byte
  packets and 80 MB/s at 32-byte packets (see
  :data:`repro.hardware.specs.MEMORY_CHANNEL_II`).
* ``miss_penalty_us`` (0.13 us) is anchored to Table 8: the 10 MB ->
  1 GB degradation of the active scheme is pure cache-miss growth over
  the lines a transaction touches (3-4 for Debit-Credit, ~15 for
  Order-Entry), giving a penalty of roughly 0.13 us per miss — a
  plausible memory latency for a 600 MHz Alpha with SDRAM.
* ``malloc_us``/``free_us`` are anchored to the Version 0 vs Version 3
  standalone gap in Table 3: Debit-Credit does 16 extra heap
  operations per transaction in Version 0 and is 1.9 us slower.
* ``txn_base_us`` — the benchmark's own compute per transaction — is
  solved at run time so that Version 3's *standalone* throughput at
  50 MB matches Table 3 exactly (two anchors, one per benchmark; see
  :func:`repro.perf.throughput.calibrate_bases`). Every other number
  in every table is then a prediction, not a fit.
* ``overlap`` models how much of the smaller of (CPU time, link time)
  is hidden by the posted-write pipeline. The Alpha's six write
  buffers overlap I/O-space stores with computation, but stores stall
  when the buffers back up; 0.45 reproduces the straightforward
  implementation's additive behaviour (Table 1) and the moderate
  active-over-passive gains (Table 6) with a single value.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.hardware.specs import (
    ALPHASERVER_4100,
    MEMORY_CHANNEL_II,
    MachineSpec,
    SanSpec,
)


@dataclass(frozen=True)
class Calibration:
    """Hardware cost constants (all times in microseconds)."""

    machine: MachineSpec = ALPHASERVER_4100
    san: SanSpec = MEMORY_CHANNEL_II

    #: benchmark logic per transaction, excluding everything the model
    #: charges separately; solved from Table 3 (Version 3, standalone).
    txn_base_us: Dict[str, float] = field(
        default_factory=lambda: {"debit-credit": 1.70, "order-entry": 7.20}
    )

    # -- engine structural costs --------------------------------------------
    set_range_us: float = 0.06  # range bookkeeping common to all versions
    malloc_us: float = 0.11  # heap allocation incl. free-list search start
    free_us: float = 0.11  # heap free incl. coalescing checks
    list_op_us: float = 0.02  # linked-list link/unlink
    walk_step_us: float = 0.01  # one step of a list walk
    array_push_us: float = 0.02  # array-index allocation (V1/V2)
    bump_alloc_us: float = 0.01  # pointer bump (V3)
    db_write_us: float = 0.035  # per in-place database store
    write_byte_us: float = 0.0012  # per byte stored
    copy_byte_us: float = 0.0016  # bcopy per byte (~600 MB/s)
    compare_byte_us: float = 0.008  # word-compare per byte (V2 diffing)

    # -- cache model -------------------------------------------------------------
    conflict_floor: float = 0.02  # residual direct-mapped miss rate

    # -- replication costs ----------------------------------------------------------
    io_store_us: float = 0.025  # CPU cost to issue one I/O-space store
    io_byte_us: float = 0.0010  # per byte pushed into I/O space
    overlap: float = 0.30  # un-hidden fraction of min(cpu, link)
    redo_record_us: float = 0.08  # building one redo record (active)
    redo_byte_us: float = 0.0016  # serializing redo payload bytes
    publish_us: float = 0.05  # ring space check + pointer publish
    two_safe_ack_us: float = 0.2  # backup-side ack processing (2-safe)

    # -- backup-side costs (active) ----------------------------------------------------
    apply_record_us: float = 0.10  # backup applying one redo record
    apply_byte_us: float = 0.0016

    def with_bases(self, bases: Dict[str, float]) -> "Calibration":
        """A copy with new per-benchmark base costs."""
        merged = dict(self.txn_base_us)
        merged.update(bases)
        return replace(self, txn_base_us=merged)


DEFAULT_CALIBRATION = Calibration()


#: The paper's reported numbers, used for paper-vs-measured reporting
#: and for anchoring the two txn_base_us values. Keys are
#: (table, benchmark, row).
PAPER: Dict[str, Dict[str, float]] = {
    # Table 1 / Table 3 / Table 4: throughput in transactions/second.
    "standalone": {
        "debit-credit": {"v0": 218627, "v1": 310077, "v2": 266922, "v3": 372692},
        "order-entry": {"v0": 73748, "v1": 81340, "v2": 74544, "v3": 95809},
    },
    "passive": {
        "debit-credit": {"v0": 38735, "v1": 119494, "v2": 131574, "v3": 275512},
        "order-entry": {"v0": 27035, "v1": 49072, "v2": 51219, "v3": 56248},
    },
    "active": {
        "debit-credit": {"active": 314861},
        "order-entry": {"active": 73940},
    },
    # Table 2 / 5 / 7: traffic in MB over the paper's full runs; the
    # per-transaction equivalents below divide by the paper's implied
    # transaction counts (4.98 M for Debit-Credit, 457 k for
    # Order-Entry).
    "traffic_per_txn": {
        "debit-credit": {
            "v0": {"modified": 28.3, "undo": 64.9, "meta": 1347.0},
            "v1": {"modified": 28.3, "undo": 64.9, "meta": 8.1},
            "v2": {"modified": 28.3, "undo": 28.3, "meta": 8.1},
            "v3": {"modified": 28.3, "undo": 64.9, "meta": 28.4},
            "active": {"modified": 28.3, "undo": 0.0, "meta": 28.4},
        },
        "order-entry": {
            "v0": {"modified": 85.1, "undo": 437.1, "meta": 948.6},
            "v1": {"modified": 85.1, "undo": 437.1, "meta": 8.1},
            "v2": {"modified": 85.1, "undo": 85.1, "meta": 8.1},
            "v3": {"modified": 85.1, "undo": 437.1, "meta": 31.7},
            "active": {"modified": 85.1, "undo": 0.0, "meta": 54.0},
        },
    },
    # Table 8: active-backup throughput vs database size.
    "dbsize": {
        "debit-credit": {"10MB": 322102, "100MB": 301604, "1GB": 280646},
        "order-entry": {"10MB": 76726, "100MB": 69496, "1GB": 59989},
    },
    # Figure 1: effective bandwidth (MB/s) by packet size.
    "figure1": {4: 14.0, 8: 25.0, 16: 45.0, 32: 80.0},
}
