"""Cache models.

Two models are provided:

* :class:`DirectMappedCache` — an exact simulator of a direct-mapped
  cache (tag per line). Used in unit tests and to validate the
  analytic model on small configurations.
* :class:`AnalyticCacheModel` — a closed-form steady-state miss-rate
  estimate for uniform random accesses over a working set. The
  throughput estimator uses this because the paper's databases (up to
  1 GB) are too large to simulate access-by-access from Python at the
  transaction volumes involved.

For a direct-mapped cache of ``C`` bytes and a uniformly accessed
working set of ``W`` bytes, the steady-state probability that a
random line is resident is ``min(1, C / W)`` (each cache set holds the
most recent of the ``W / C`` lines mapping to it, and accesses are
uniform). A small conflict-miss floor accounts for direct-mapped
conflicts even when ``W <= C``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import CacheSpec


class DirectMappedCache:
    """Exact direct-mapped cache simulator.

    Addresses are byte addresses; each access touches the single line
    containing the address (callers split multi-line accesses with
    :meth:`access_range`).
    """

    def __init__(self, spec: CacheSpec):
        if spec.size_bytes % spec.line_size != 0:
            raise ValueError("cache size must be a multiple of the line size")
        self.spec = spec
        self._tags: list = [None] * spec.num_lines
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate every line (does not reset statistics)."""
        self._tags = [None] * self.spec.num_lines

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = address // self.spec.line_size
        index = line % self.spec.num_lines
        if self._tags[index] == line:
            self.hits += 1
            return True
        self._tags[index] = line
        self.misses += 1
        return False

    def access_range(self, offset: int, length: int) -> int:
        """Access every line in ``[offset, offset+length)``; returns misses."""
        if length <= 0:
            return 0
        line_size = self.spec.line_size
        first = offset // line_size
        last = (offset + length - 1) // line_size
        misses = 0
        for line in range(first, last + 1):
            if not self.access(line * line_size):
                misses += 1
        return misses

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


@dataclass(frozen=True)
class AnalyticCacheModel:
    """Closed-form miss-rate model for uniform random line accesses.

    Attributes:
        spec: the cache being modelled.
        conflict_floor: residual miss rate when the working set fits —
            direct-mapped conflict misses plus cold misses amortized
            over a long run. Calibrated in repro.perf.calibration.
    """

    spec: CacheSpec
    conflict_floor: float = 0.02

    def miss_rate(self, working_set_bytes: int) -> float:
        """Steady-state miss probability for one random line access."""
        if working_set_bytes <= 0:
            return 0.0
        resident = min(1.0, self.spec.size_bytes / working_set_bytes)
        miss = 1.0 - resident
        return min(1.0, max(miss, 0.0) + self.conflict_floor * resident)

    def miss_time_us(self, working_set_bytes: int, lines_touched: float) -> float:
        """Expected stall time for ``lines_touched`` random line accesses."""
        return (
            self.miss_rate(working_set_bytes)
            * lines_touched
            * self.spec.miss_penalty_us
        )

    def sequential_miss_time_us(self, total_bytes: float) -> float:
        """Expected stall time for a sequential sweep of ``total_bytes``.

        Sequential access misses once per line (no reuse), so the cost
        is simply lines * penalty. Used for log writes and mirror
        sweeps over regions larger than the cache.
        """
        lines = total_bytes / self.spec.line_size
        return lines * self.spec.miss_penalty_us
