"""Hardware models for the paper's testbed.

The paper measures AlphaServer 4100 5/600 machines (four 600 MHz Alpha
21164A CPUs, 8 MB direct-mapped board cache with 64-byte lines, six
32-byte CPU write buffers) connected by a Memory Channel II SAN. This
package models the pieces of that hardware whose behaviour the paper's
results hinge on:

* :mod:`repro.hardware.specs` — machine/cache/SAN parameter records.
* :mod:`repro.hardware.cache` — an exact direct-mapped cache simulator
  and an analytic miss-rate model used by the throughput estimator.
* :mod:`repro.hardware.writebuffer` — the 6x32-byte write-buffer
  coalescing model that turns store streams into Memory Channel
  packets (the mechanism behind Figure 1 and the logging-vs-mirroring
  result).
* :mod:`repro.hardware.cpu` — cost accounting in CPU time.
"""

from repro.hardware.specs import (
    ALPHASERVER_4100,
    MEMORY_CHANNEL_II,
    CacheSpec,
    MachineSpec,
    SanSpec,
)
from repro.hardware.cache import AnalyticCacheModel, DirectMappedCache
from repro.hardware.writebuffer import WriteBufferModel
from repro.hardware.cpu import CostAccumulator

__all__ = [
    "ALPHASERVER_4100",
    "MEMORY_CHANNEL_II",
    "CacheSpec",
    "MachineSpec",
    "SanSpec",
    "AnalyticCacheModel",
    "DirectMappedCache",
    "WriteBufferModel",
    "CostAccumulator",
]
