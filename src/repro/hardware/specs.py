"""Parameter records for the paper's hardware.

All times are microseconds, all sizes bytes, matching the units used
throughout the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class CacheSpec:
    """A single cache level.

    The paper's results are dominated by the 8 MB direct-mapped
    board-level cache (64-byte lines); the on-chip levels are folded
    into the base CPU costs during calibration.
    """

    size_bytes: int
    line_size: int
    miss_penalty_us: float

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    def lines_spanned(self, offset: int, length: int) -> int:
        """Number of cache lines touched by ``[offset, offset+length)``."""
        if length <= 0:
            return 0
        first = offset // self.line_size
        last = (offset + length - 1) // self.line_size
        return last - first + 1


@dataclass(frozen=True)
class MachineSpec:
    """A compute node (one AlphaServer 4100 in the paper)."""

    name: str
    cpu_mhz: float
    num_cpus: int
    memory_bytes: int
    board_cache: CacheSpec
    write_buffers: int
    write_buffer_bytes: int

    @property
    def cycle_us(self) -> float:
        """Duration of one CPU cycle in microseconds."""
        return 1.0 / self.cpu_mhz

    def cycles_to_us(self, cycles: float) -> float:
        return cycles / self.cpu_mhz


@dataclass(frozen=True)
class SanSpec:
    """A system-area network with write-through capability.

    The effective process-to-process bandwidth follows the measured
    Figure 1 curve, which is captured by a fixed per-packet overhead
    plus a byte-transfer term::

        packet_time(size) = per_packet_overhead_us + size / raw_bandwidth

    Fitting the paper's endpoints (14 MB/s at 4-byte packets, 80 MB/s
    at 32-byte packets) gives overhead ~= 0.27 us and raw bandwidth
    ~= 250 MB/us... i.e. 250 bytes/us. The interface never aggregates
    across PCI writes, so ``max_packet_bytes`` caps packet size at 32.
    """

    name: str
    latency_us: float
    per_packet_overhead_us: float
    raw_bandwidth_bytes_per_us: float
    max_packet_bytes: int

    def packet_time_us(self, size_bytes: int) -> float:
        """Link occupancy of one packet of ``size_bytes`` payload."""
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        if size_bytes > self.max_packet_bytes:
            raise ValueError(
                f"packet of {size_bytes} bytes exceeds max "
                f"{self.max_packet_bytes} for {self.name}"
            )
        return self.per_packet_overhead_us + size_bytes / self.raw_bandwidth_bytes_per_us

    def effective_bandwidth_mb_per_s(self, packet_bytes: int) -> float:
        """Sustained MB/s for a stream of fixed-size packets (Figure 1)."""
        time_per_packet = self.packet_time_us(packet_bytes)
        bytes_per_us = packet_bytes / time_per_packet
        return bytes_per_us * 1e6 / MB


#: The paper's compute node: AlphaServer 4100 5/600 — four 600 MHz
#: 21164A CPUs, 2 GB memory, 8 MB direct-mapped board cache with
#: 64-byte lines, six 32-byte write buffers per CPU. The ~0.13 us miss
#: penalty is calibrated from Table 8 (see repro.perf.calibration).
ALPHASERVER_4100 = MachineSpec(
    name="AlphaServer 4100 5/600",
    cpu_mhz=600.0,
    num_cpus=4,
    memory_bytes=2 * GB,
    board_cache=CacheSpec(size_bytes=8 * MB, line_size=64, miss_penalty_us=0.13),
    write_buffers=6,
    write_buffer_bytes=32,
)

#: Memory Channel II: 3.3 us uncontended latency for a 4-byte write;
#: 80 MB/s peak with 32-byte packets, ~14 MB/s with 4-byte packets
#: (Figure 1). The overhead/raw-bandwidth split is fitted from those
#: two endpoints:
#:   4/(o + 4/r)  = 14 MB/s  and  32/(o + 32/r) = 80 MB/s
#: => o ~= 0.272 us, r ~= 262 bytes/us.
MEMORY_CHANNEL_II = SanSpec(
    name="Memory Channel II",
    latency_us=3.3,
    per_packet_overhead_us=0.272,
    raw_bandwidth_bytes_per_us=262.0,
    max_packet_bytes=32,
)
