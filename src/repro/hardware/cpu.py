"""CPU-time cost accounting.

The performance model charges CPU time to named components (benchmark
logic, allocation, copying, cache stalls, I/O-space store issue, ...)
so experiment reports can show *where* each design spends its time —
the paper's qualitative arguments (locality, metadata overhead) then
become visible in the breakdown rather than buried in one number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple


@dataclass
class CostAccumulator:
    """Accumulates microseconds of CPU time per named component."""

    components: Dict[str, float] = field(default_factory=dict)

    def charge(self, component: str, micros: float) -> None:
        """Add ``micros`` microseconds to ``component``."""
        if micros < 0:
            raise ValueError(f"cannot charge negative time to {component!r}")
        self.components[component] = self.components.get(component, 0.0) + micros

    def total_us(self) -> float:
        return sum(self.components.values())

    def merge(self, other: "CostAccumulator") -> None:
        """Fold another accumulator's charges into this one."""
        for component, micros in other.components.items():
            self.components[component] = (
                self.components.get(component, 0.0) + micros
            )

    def scaled(self, factor: float) -> "CostAccumulator":
        """Return a copy with every component multiplied by ``factor``."""
        return CostAccumulator(
            {component: micros * factor for component, micros in self.components.items()}
        )

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self.components.items()))

    def __getitem__(self, component: str) -> float:
        return self.components.get(component, 0.0)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:.3f}" for k, v in self.items())
        return f"CostAccumulator({parts})"
