"""The Alpha write-buffer coalescing model.

The 21164A has six 32-byte write buffers. Contiguous stores to the
same 32-byte-aligned block share a buffer and are flushed to the
system bus together; the Memory Channel interface converts each PCI
write into a similar-size packet and never aggregates across PCI
writes, so the largest possible packet is 32 bytes (Section 2.3).

This module models that mechanism: a stream of (address, length)
stores into I/O space is folded into at most six open buffers; a
buffer drains as one packet when

* it becomes completely full (all 32 bytes written),
* it is displaced by a store to a seventh distinct block (FIFO), or
* an explicit barrier flushes everything (commit-ordering points).

The packet size is the number of distinct bytes written into the
buffer, which is what determines effective Memory Channel bandwidth
(Figure 1). This is the mechanism that makes the contiguous log
writes of Version 3 cheap (32-byte packets at 80 MB/s) and the
scattered 4-byte database writes expensive (~14 MB/s).
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

BLOCK_BYTES_DEFAULT = 32

try:  # py >= 3.10
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - exercised on py3.9 CI
    _POP16 = [bin(value).count("1") for value in range(1 << 16)]

    def _popcount(mask: int) -> int:
        count = 0
        while mask:
            count += _POP16[mask & 0xFFFF]
            mask >>= 16
        return count


@dataclass
class _OpenBuffer:
    """One in-flight write buffer covering a 32-byte-aligned block."""

    block: int
    written: int = 0  # bitmask over bytes in the block

    def add(self, lo: int, hi: int) -> None:
        """Mark bytes [lo, hi) within the block as written."""
        span = (1 << (hi - lo)) - 1
        self.written |= span << lo

    def byte_count(self) -> int:
        return _popcount(self.written)


class WriteBufferModel:
    """Folds a store stream into Memory Channel packets.

    Args:
        num_buffers: number of concurrent write buffers (6 on the EV5.6).
        block_bytes: buffer width (32 bytes).
        on_packet: optional callback invoked with each emitted packet
            size in bytes; used by the SAN layer to account link time.
    """

    def __init__(
        self,
        num_buffers: int = 6,
        block_bytes: int = BLOCK_BYTES_DEFAULT,
        on_packet: Optional[Callable[[int], None]] = None,
    ):
        if num_buffers < 1:
            raise ValueError("need at least one write buffer")
        if block_bytes < 1 or block_bytes & (block_bytes - 1):
            raise ValueError("block size must be a positive power of two")
        self.num_buffers = num_buffers
        self.block_bytes = block_bytes
        self.on_packet = on_packet
        self._open: "OrderedDict[int, _OpenBuffer]" = OrderedDict()
        self.packets_emitted = 0
        self.bytes_emitted = 0
        self._histogram: Counter = Counter()
        self._full_mask = (1 << block_bytes) - 1

    # -- store stream ---------------------------------------------------

    def write(self, address: int, length: int) -> None:
        """Record a store of ``length`` bytes at ``address``."""
        if length <= 0:
            return
        block_bytes = self.block_bytes
        end = address + length
        while address < end:
            block = address // block_bytes
            lo = address - block * block_bytes
            hi = min(end - block * block_bytes, block_bytes)
            self._write_block(block, lo, hi)
            address = (block + 1) * block_bytes

    def _write_block(self, block: int, lo: int, hi: int) -> None:
        buffer = self._open.get(block)
        if buffer is None:
            if len(self._open) >= self.num_buffers:
                # FIFO displacement: drain the oldest open buffer.
                _, oldest = self._open.popitem(last=False)
                self._emit(oldest)
            buffer = _OpenBuffer(block)
            self._open[block] = buffer
        buffer.written |= ((1 << (hi - lo)) - 1) << lo
        if buffer.written == self._full_mask:
            del self._open[block]
            self._emit(buffer)

    def write_batch(self, stores: Iterable[Tuple[int, int]]) -> None:
        """Record a whole batch of (address, length) stores.

        Semantically identical to calling :meth:`write` once per store
        in order — same packets, same statistics — but with the block
        loop inlined and every per-store attribute lookup hoisted out,
        which is what makes the batched store pipeline cheap.
        """
        block_bytes = self.block_bytes
        num_buffers = self.num_buffers
        full_mask = self._full_mask
        open_ = self._open
        get = open_.get
        for address, length in stores:
            if length <= 0:
                continue
            end = address + length
            while address < end:
                block = address // block_bytes
                base = block * block_bytes
                lo = address - base
                hi = end - base
                if hi > block_bytes:
                    hi = block_bytes
                buffer = get(block)
                if buffer is None:
                    if len(open_) >= num_buffers:
                        _, oldest = open_.popitem(last=False)
                        self._emit(oldest)
                    buffer = _OpenBuffer(block)
                    open_[block] = buffer
                buffer.written |= ((1 << (hi - lo)) - 1) << lo
                if buffer.written == full_mask:
                    del open_[block]
                    self._emit(buffer)
                address = base + block_bytes

    def barrier(self) -> None:
        """Flush all open buffers (a memory barrier / commit point)."""
        open_ = self._open
        while open_:
            _, buffer = open_.popitem(last=False)
            self._emit(buffer)

    def _drain(self, buffer: _OpenBuffer) -> None:
        self._open.pop(buffer.block, None)
        self._emit(buffer)

    def _emit(self, buffer: _OpenBuffer) -> None:
        size = _popcount(buffer.written)
        if size == 0:
            return
        self.packets_emitted += 1
        self.bytes_emitted += size
        self._histogram[size] += 1
        if self.on_packet is not None:
            self.on_packet(size)

    def account_replayed(self, sizes: Iterable[int], total_bytes: int) -> None:
        """Credit packets produced by a replay-cache hit.

        The fast path computed (or looked up) the packet sequence a
        store schedule drains into without running :meth:`write`; this
        folds those packets into the model's own statistics so its
        counters stay byte-identical with the slow path. The caller is
        responsible for the schedule having started *and* ended with no
        open buffers (a barrier-terminated batch).
        """
        sizes = tuple(sizes)
        self.packets_emitted += len(sizes)
        self.bytes_emitted += total_bytes
        self._histogram.update(sizes)
        if self.on_packet is not None:
            for size in sizes:
                self.on_packet(size)

    # -- inspection -----------------------------------------------------

    @property
    def open_buffers(self) -> int:
        """How many write buffers currently hold undrained stores (the
        queue-occupancy number the observability layer gauges)."""
        return len(self._open)

    @property
    def histogram(self) -> dict:
        """Mapping of packet size (bytes) -> count of packets emitted."""
        return dict(self._histogram)

    def mean_packet_bytes(self) -> float:
        if not self.packets_emitted:
            return 0.0
        return self.bytes_emitted / self.packets_emitted

    def reset(self) -> None:
        """Drop open buffers and statistics."""
        self._open.clear()
        self.packets_emitted = 0
        self.bytes_emitted = 0
        self._histogram.clear()


class VectorWriteBufferModel:
    """Fast-path twin of :class:`WriteBufferModel`.

    Byte-identical packet sequences and statistics on every store
    schedule — the Hypothesis suite drives both models with random
    schedules and asserts the emitted packet streams match — but the
    bookkeeping is flat: open buffers are bare ``int`` bitmasks in a
    plain insertion-ordered dict (no per-buffer object allocation, no
    attribute chasing), and multi-block stores drain their interior
    full blocks with run-length arithmetic instead of a per-block
    Python loop. Contiguous streams (the Version 3 log discipline that
    motivates the model) touch the dict at most twice per store — the
    partial head and tail — no matter how many blocks they span.

    Equivalence notes, mirrored in the fallbacks below:

    * A store is split into head/interior/tail per block in address
      order, exactly the reference loop's order.
    * The interior bulk path only fires when no interior block is
      already open; then the reference would evict at most one oldest
      buffer (for the first interior block, if at capacity) and emit
      one full packet per block — pure arithmetic here. Any overlap
      falls back to the per-block path, which is the reference
      algorithm on int masks.
    * :meth:`write_batch` coalesces adjacent stores only when they
      meet on a block boundary, so the per-block sub-span sequence —
      and therefore every displacement and drain — is preserved
      exactly.
    """

    def __init__(
        self,
        num_buffers: int = 6,
        block_bytes: int = BLOCK_BYTES_DEFAULT,
        on_packet: Optional[Callable[[int], None]] = None,
    ):
        if num_buffers < 1:
            raise ValueError("need at least one write buffer")
        if block_bytes < 1 or block_bytes & (block_bytes - 1):
            raise ValueError("block size must be a positive power of two")
        self.num_buffers = num_buffers
        self.block_bytes = block_bytes
        self.on_packet = on_packet
        self._open: dict = {}  # block -> written bitmask (insertion = FIFO)
        self.packets_emitted = 0
        self.bytes_emitted = 0
        self._histogram: Counter = Counter()
        self._full_mask = (1 << block_bytes) - 1

    # -- store stream ---------------------------------------------------

    def write(self, address: int, length: int) -> None:
        """Record a store of ``length`` bytes at ``address``."""
        if length > 0:
            self._write_run(address, address + length)

    def write_batch(self, stores: Iterable[Tuple[int, int]]) -> None:
        """Record a whole batch of (address, length) stores.

        Adjacent stores that meet exactly on a block boundary are
        coalesced into one run before draining — the junction being
        block-aligned means the merged run splits into the very same
        per-block sub-spans the stores would produce individually, so
        the packet stream is untouched.
        """
        block_mask = self.block_bytes - 1
        run_start = 0
        run_end = -1  # sentinel: no open run
        for address, length in stores:
            if length <= 0:
                continue
            if address == run_end and address & block_mask == 0:
                run_end = address + length
                continue
            if run_end >= 0:
                self._write_run(run_start, run_end)
            run_start = address
            run_end = address + length
        if run_end >= 0:
            self._write_run(run_start, run_end)

    def _write_run(self, start: int, end: int) -> None:
        """Drain the contiguous byte run [start, end), start < end."""
        block_bytes = self.block_bytes
        first = start // block_bytes
        last = (end - 1) // block_bytes
        if first == last:
            base = first * block_bytes
            self._store(first, start - base, end - base)
            return
        head_lo = start - first * block_bytes
        if head_lo:
            self._store(first, head_lo, block_bytes)
            first += 1
        tail_hi = end - last * block_bytes
        interior_end = last + 1 if tail_hi == block_bytes else last
        if interior_end > first:
            self._store_full_blocks(first, interior_end)
        if tail_hi != block_bytes:
            self._store(last, 0, tail_hi)

    def _store(self, block: int, lo: int, hi: int) -> None:
        """Reference `_write_block` on a bare bitmask."""
        open_ = self._open
        span = ((1 << (hi - lo)) - 1) << lo
        mask = open_.get(block)
        if mask is None:
            if len(open_) >= self.num_buffers:
                # FIFO displacement: drain the oldest open buffer.
                oldest = next(iter(open_))
                self._emit_size(_popcount(open_.pop(oldest)))
            if span == self._full_mask:
                self._emit_size(self.block_bytes)
            else:
                open_[block] = span
            return
        mask |= span
        if mask == self._full_mask:
            del open_[block]
            self._emit_size(self.block_bytes)
        else:
            open_[block] = mask

    def _store_full_blocks(self, first: int, last: int) -> None:
        """Drain the fully-covered blocks [first, last) in one step."""
        open_ = self._open
        for block in open_:
            if first <= block < last:
                # An interior block is already partially open: the
                # displacement pattern depends on its position, so
                # take the exact per-block path.
                full = self.block_bytes
                for b in range(first, last):
                    self._store(b, 0, full)
                return
        count = last - first
        if open_ and len(open_) >= self.num_buffers:
            # Only the first insertion can displace: every block in
            # the run drains immediately, so occupancy never grows.
            oldest = next(iter(open_))
            self._emit_size(_popcount(open_.pop(oldest)))
        size = self.block_bytes
        self.packets_emitted += count
        self.bytes_emitted += count * size
        self._histogram[size] += count
        callback = self.on_packet
        if callback is not None:
            for _ in range(count):
                callback(size)

    def barrier(self) -> None:
        """Flush all open buffers (a memory barrier / commit point)."""
        open_ = self._open
        if not open_:
            return
        for mask in open_.values():  # insertion order == FIFO
            self._emit_size(_popcount(mask))
        open_.clear()

    def _emit_size(self, size: int) -> None:
        if size == 0:
            return
        self.packets_emitted += 1
        self.bytes_emitted += size
        self._histogram[size] += 1
        if self.on_packet is not None:
            self.on_packet(size)

    def account_replayed(self, sizes: Iterable[int], total_bytes: int) -> None:
        """Credit packets produced by a replay-cache hit (see
        :meth:`WriteBufferModel.account_replayed`)."""
        sizes = tuple(sizes)
        self.packets_emitted += len(sizes)
        self.bytes_emitted += total_bytes
        self._histogram.update(sizes)
        if self.on_packet is not None:
            for size in sizes:
                self.on_packet(size)

    # -- inspection -----------------------------------------------------

    @property
    def open_buffers(self) -> int:
        """How many write buffers currently hold undrained stores."""
        return len(self._open)

    @property
    def histogram(self) -> dict:
        """Mapping of packet size (bytes) -> count of packets emitted."""
        return dict(self._histogram)

    def mean_packet_bytes(self) -> float:
        if not self.packets_emitted:
            return 0.0
        return self.bytes_emitted / self.packets_emitted

    def reset(self) -> None:
        """Drop open buffers and statistics."""
        self._open.clear()
        self.packets_emitted = 0
        self.bytes_emitted = 0
        self._histogram.clear()


def writebuffer_model(
    num_buffers: int = 6,
    block_bytes: int = BLOCK_BYTES_DEFAULT,
    on_packet: Optional[Callable[[int], None]] = None,
):
    """The write-buffer model for a new interface.

    Selects the flat-bookkeeping :class:`VectorWriteBufferModel` under
    the fast path and the reference :class:`WriteBufferModel` under
    ``REPRO_FASTPATH=0`` / ``--no-fastpath`` — same packet stream
    either way, per the fastpath byte-identity discipline.
    """
    import repro.fastpath

    if repro.fastpath.enabled():
        return VectorWriteBufferModel(num_buffers, block_bytes, on_packet)
    return WriteBufferModel(num_buffers, block_bytes, on_packet)


def packets_for_stores(
    stores: Iterable[Tuple[int, int]],
    num_buffers: int = 6,
    block_bytes: int = BLOCK_BYTES_DEFAULT,
    barrier_between: bool = False,
) -> List[int]:
    """Convenience: run a store stream through a fresh model.

    Args:
        stores: iterable of (address, length) stores.
        barrier_between: insert a barrier after every store (models
            fully serialized writes; used in tests).

    Returns the list of emitted packet sizes in order.
    """
    sizes: List[int] = []
    model = WriteBufferModel(num_buffers, block_bytes, on_packet=sizes.append)
    for address, length in stores:
        model.write(address, length)
        if barrier_between:
            model.barrier()
    model.barrier()
    return sizes
