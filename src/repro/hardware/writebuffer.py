"""The Alpha write-buffer coalescing model.

The 21164A has six 32-byte write buffers. Contiguous stores to the
same 32-byte-aligned block share a buffer and are flushed to the
system bus together; the Memory Channel interface converts each PCI
write into a similar-size packet and never aggregates across PCI
writes, so the largest possible packet is 32 bytes (Section 2.3).

This module models that mechanism: a stream of (address, length)
stores into I/O space is folded into at most six open buffers; a
buffer drains as one packet when

* it becomes completely full (all 32 bytes written),
* it is displaced by a store to a seventh distinct block (FIFO), or
* an explicit barrier flushes everything (commit-ordering points).

The packet size is the number of distinct bytes written into the
buffer, which is what determines effective Memory Channel bandwidth
(Figure 1). This is the mechanism that makes the contiguous log
writes of Version 3 cheap (32-byte packets at 80 MB/s) and the
scattered 4-byte database writes expensive (~14 MB/s).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

BLOCK_BYTES_DEFAULT = 32


@dataclass
class _OpenBuffer:
    """One in-flight write buffer covering a 32-byte-aligned block."""

    block: int
    written: int = 0  # bitmask over bytes in the block

    def add(self, lo: int, hi: int) -> None:
        """Mark bytes [lo, hi) within the block as written."""
        span = (1 << (hi - lo)) - 1
        self.written |= span << lo

    def byte_count(self) -> int:
        return bin(self.written).count("1")


class WriteBufferModel:
    """Folds a store stream into Memory Channel packets.

    Args:
        num_buffers: number of concurrent write buffers (6 on the EV5.6).
        block_bytes: buffer width (32 bytes).
        on_packet: optional callback invoked with each emitted packet
            size in bytes; used by the SAN layer to account link time.
    """

    def __init__(
        self,
        num_buffers: int = 6,
        block_bytes: int = BLOCK_BYTES_DEFAULT,
        on_packet: Optional[Callable[[int], None]] = None,
    ):
        if num_buffers < 1:
            raise ValueError("need at least one write buffer")
        if block_bytes < 1 or block_bytes & (block_bytes - 1):
            raise ValueError("block size must be a positive power of two")
        self.num_buffers = num_buffers
        self.block_bytes = block_bytes
        self.on_packet = on_packet
        self._open: "OrderedDict[int, _OpenBuffer]" = OrderedDict()
        self.packets_emitted = 0
        self.bytes_emitted = 0
        self._histogram: dict = {}

    # -- store stream ---------------------------------------------------

    def write(self, address: int, length: int) -> None:
        """Record a store of ``length`` bytes at ``address``."""
        if length <= 0:
            return
        block_bytes = self.block_bytes
        end = address + length
        while address < end:
            block = address // block_bytes
            lo = address - block * block_bytes
            hi = min(end - block * block_bytes, block_bytes)
            self._write_block(block, lo, hi)
            address = (block + 1) * block_bytes

    def _write_block(self, block: int, lo: int, hi: int) -> None:
        buffer = self._open.get(block)
        if buffer is None:
            if len(self._open) >= self.num_buffers:
                # FIFO displacement: drain the oldest open buffer.
                _, oldest = next(iter(self._open.items()))
                self._drain(oldest)
            buffer = _OpenBuffer(block)
            self._open[block] = buffer
        buffer.add(lo, hi)
        if buffer.byte_count() == self.block_bytes:
            self._drain(buffer)

    def barrier(self) -> None:
        """Flush all open buffers (a memory barrier / commit point)."""
        for buffer in list(self._open.values()):
            self._drain(buffer)

    def _drain(self, buffer: _OpenBuffer) -> None:
        self._open.pop(buffer.block, None)
        size = buffer.byte_count()
        if size == 0:
            return
        self.packets_emitted += 1
        self.bytes_emitted += size
        self._histogram[size] = self._histogram.get(size, 0) + 1
        if self.on_packet is not None:
            self.on_packet(size)

    # -- inspection -----------------------------------------------------

    @property
    def open_buffers(self) -> int:
        """How many write buffers currently hold undrained stores (the
        queue-occupancy number the observability layer gauges)."""
        return len(self._open)

    @property
    def histogram(self) -> dict:
        """Mapping of packet size (bytes) -> count of packets emitted."""
        return dict(self._histogram)

    def mean_packet_bytes(self) -> float:
        if not self.packets_emitted:
            return 0.0
        return self.bytes_emitted / self.packets_emitted

    def reset(self) -> None:
        """Drop open buffers and statistics."""
        self._open.clear()
        self.packets_emitted = 0
        self.bytes_emitted = 0
        self._histogram.clear()


def packets_for_stores(
    stores: Iterable[Tuple[int, int]],
    num_buffers: int = 6,
    block_bytes: int = BLOCK_BYTES_DEFAULT,
    barrier_between: bool = False,
) -> List[int]:
    """Convenience: run a store stream through a fresh model.

    Args:
        stores: iterable of (address, length) stores.
        barrier_between: insert a barrier after every store (models
            fully serialized writes; used in tests).

    Returns the list of emitted packet sizes in order.
    """
    sizes: List[int] = []
    model = WriteBufferModel(num_buffers, block_bytes, on_packet=sizes.append)
    for address, length in stores:
        model.write(address, length)
        if barrier_between:
            model.barrier()
    model.barrier()
    return sizes
