"""Packet traces and statistics.

A :class:`PacketTrace` is a histogram of packet sizes emitted by a
sender's write buffers, together with helpers to convert the histogram
into link occupancy time under a :class:`~repro.hardware.specs.SanSpec`.
The distribution of packet sizes — not just total bytes — is the
paper's central performance mechanism: 4-byte packets see ~14 MB/s
while 32-byte packets see 80 MB/s (Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.hardware.specs import SanSpec


@dataclass
class PacketTrace:
    """Histogram of packets sent on a link."""

    histogram: Dict[int, int] = field(default_factory=dict)

    def record(self, size_bytes: int) -> None:
        """Account one packet of ``size_bytes`` payload."""
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        self.histogram[size_bytes] = self.histogram.get(size_bytes, 0) + 1

    def merge(self, other: "PacketTrace") -> None:
        for size, count in other.histogram.items():
            self.histogram[size] = self.histogram.get(size, 0) + count

    @property
    def packets(self) -> int:
        return sum(self.histogram.values())

    @property
    def bytes(self) -> int:
        return sum(size * count for size, count in self.histogram.items())

    def mean_packet_bytes(self) -> float:
        return self.bytes / self.packets if self.packets else 0.0

    def link_time_us(self, san: SanSpec) -> float:
        """Total link occupancy to drain this trace."""
        return sum(
            count * san.packet_time_us(size)
            for size, count in self.histogram.items()
        )

    def effective_bandwidth_mb_per_s(self, san: SanSpec) -> float:
        """Bytes over link time, in MB/s (0 for an empty trace)."""
        time_us = self.link_time_us(san)
        if time_us == 0:
            return 0.0
        return (self.bytes / time_us) * 1e6 / (1024 * 1024)

    def scaled(self, factor: float) -> "PacketTrace":
        """A trace with counts multiplied by ``factor`` (may be fractional
        link-time math downstream; counts are kept as floats only in the
        returned histogram sums)."""
        return PacketTrace(
            {size: count * factor for size, count in self.histogram.items()}
        )

    def clear(self) -> None:
        self.histogram.clear()

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{size}B x {count}" for size, count in sorted(self.histogram.items())
        )
        return f"PacketTrace({parts or 'empty'})"
