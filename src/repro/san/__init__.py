"""System-area-network substrate: the Memory Channel model.

The Memory Channel lets a processor write directly into the physical
memory of another machine: stores to an I/O-space mapping are turned
into network packets by the sender's interface and DMA-ed into the
receiver's memory with no remote-CPU involvement (Section 2.3).

* :mod:`repro.san.packets` — packet traces and per-size statistics.
* :mod:`repro.san.memory_channel` — transmit mappings, write-through
  delivery, loopback mode (with its read-your-writes hazard) and
  write doubling.
* :mod:`repro.san.link` — link-time accounting with multi-sender
  contention, used for the SMP-primary experiments (Figures 2, 3).
* :mod:`repro.san.ping_pong` — the microbenchmark behind Figure 1.
"""

from repro.san.packets import PacketTrace
from repro.san.memory_channel import (
    DoubledWrite,
    LoopbackBuffer,
    MemoryChannelInterface,
    TransmitMapping,
)
from repro.san.link import SharedLink
from repro.san.ping_pong import measure_effective_bandwidth, run_figure1_sweep

__all__ = [
    "PacketTrace",
    "MemoryChannelInterface",
    "TransmitMapping",
    "LoopbackBuffer",
    "DoubledWrite",
    "SharedLink",
    "measure_effective_bandwidth",
    "run_figure1_sweep",
]
