"""Shared-link contention accounting.

The SMP-primary experiments (Section 8, Figures 2 and 3) run one
transaction stream per CPU, all funnelling their write-through traffic
onto the *same* Memory Channel link. The link is a serial resource:
aggregate throughput is capped by how many packets per second it can
carry, and the cap depends on the packet-size mix each protocol
produces. :class:`SharedLink` turns per-stream packet traces into that
cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.hardware.specs import SanSpec
from repro.obs.observer import NULL_OBSERVER
from repro.san.packets import PacketTrace


@dataclass
class SharedLink:
    """A single link carrying traffic from several senders."""

    san: SanSpec
    traces: List[PacketTrace] = field(default_factory=list)
    observer: object = field(default=NULL_OBSERVER, repr=False, compare=False)

    def attach(self, trace: PacketTrace) -> None:
        """Add one sender's packet trace to the link."""
        self.traces.append(trace)
        if self.observer.enabled:
            self.observer.count("san.shared.senders")
            self.observer.count("san.shared.packets", trace.packets)
            self.observer.count("san.shared.bytes", trace.bytes)

    def total_link_time_us(self) -> float:
        """Serial time to drain every attached trace."""
        total = sum(trace.link_time_us(self.san) for trace in self.traces)
        if self.observer.enabled:
            self.observer.gauge("san.shared.link_time_us", total)
        return total

    def utilization(self, elapsed_us: float) -> float:
        """Fraction of ``elapsed_us`` the link spent busy (can exceed
        1.0 when the offered load is infeasible, i.e. the link is the
        bottleneck)."""
        if elapsed_us <= 0:
            raise ValueError("elapsed time must be positive")
        return self.total_link_time_us() / elapsed_us

    def max_rate_per_second(self, link_time_per_unit_us: float) -> float:
        """How many 'units' (transactions) per second the link can carry
        if each unit occupies the link for ``link_time_per_unit_us``."""
        if link_time_per_unit_us <= 0:
            return float("inf")
        return 1e6 / link_time_per_unit_us
