"""The Memory Channel interface model.

A :class:`MemoryChannelInterface` belongs to one node. A
:class:`TransmitMapping` connects a window of the node's I/O space to a
:class:`~repro.memory.region.MemoryRegion` on a remote node: stores to
the window are folded into Memory Channel packets by the sender's
write buffers (:class:`~repro.hardware.writebuffer.WriteBufferModel`)
and deposited into the remote region by DMA — the remote CPU is never
involved, which is what makes a *passive* backup possible.

Only remote writes are supported; remote reads are not (Section 2.3).
The asymmetry forces "write doubling": the sender keeps an ordinary
local copy for reads and performs every store twice, once to the local
copy and once to I/O space. Loopback mode — where the interface also
applies I/O-space stores to the local copy — is modelled too, including
the delivery delay that makes it impractical (a processor may not see
its own last write), which is why all the paper's systems double-write
instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import fastpath as _fastpath
from repro.errors import CrashedError, NotMappedError
from repro.fastpath.replay import GLOBAL_REPLAY_CACHE
from repro.hardware.specs import SanSpec, MEMORY_CHANNEL_II
from repro.hardware.writebuffer import writebuffer_model
from repro.memory.region import MemoryRegion, WriteCategory
from repro.obs.observer import resolve_observer
from repro.san.packets import PacketTrace

#: Cap on deferred stores held per interface before a partial drain;
#: bounds memory for barrier-free streams (the redo ring's).
_PENDING_LIMIT = 8192


class TransmitMapping:
    """One sender-side I/O-space window mapped onto a remote region.

    The window occupies ``[io_base, io_base + size)`` in the sender's
    I/O space and is backed by ``remote`` (same size) on the receiver.
    """

    def __init__(
        self,
        interface: "MemoryChannelInterface",
        io_base: int,
        remote: MemoryRegion,
        name: str = "",
    ):
        self.interface = interface
        self.io_base = io_base
        self.remote = remote
        self.size = remote.size
        self.name = name or remote.name
        self.bytes_sent = 0
        self.bytes_by_category: Dict[WriteCategory, int] = {}

    def write(
        self,
        offset: int,
        data: bytes,
        category: WriteCategory = WriteCategory.MODIFIED,
    ) -> None:
        """Store ``data`` at ``offset`` within the window.

        The store is pushed through the sender's write buffers (packet
        accounting) and delivered into the remote region.
        """
        self.interface._transmit(self, offset, data, category)

    def write_uncoalesced(
        self,
        offset: int,
        data: bytes,
        category: WriteCategory = WriteCategory.MODIFIED,
        word_bytes: int = 4,
    ) -> None:
        """Store ``data`` as isolated word-size packets.

        Models a doubled-write stream whose source stalls between
        stores (e.g. copying through cache-missing mirror lines): the
        write buffer drains during each stall, so every word leaves as
        its own Memory Channel packet — the "no aggregation" behaviour
        the paper reports for the mirroring protocols (Section 8).
        """
        self.interface._transmit_uncoalesced(self, offset, data, category, word_bytes)

    def __repr__(self) -> str:
        return (
            f"TransmitMapping({self.name!r}, io_base={self.io_base:#x}, "
            f"size={self.size})"
        )


class LoopbackBuffer:
    """Models loopback mode's delayed local delivery.

    Writes queue here before being applied to the local copy; until
    :meth:`deliver` runs, local reads see stale data — the
    read-your-writes hazard that makes loopback impractical
    (Section 2.3).
    """

    def __init__(self, local: MemoryRegion):
        self.local = local
        self._pending: List[Tuple[int, bytes]] = []

    def enqueue(self, offset: int, data: bytes) -> None:
        self._pending.append((offset, data))

    @property
    def pending_writes(self) -> int:
        return len(self._pending)

    def deliver(self, count: Optional[int] = None) -> int:
        """Apply up to ``count`` queued writes (all when None)."""
        if count is None:
            count = len(self._pending)
        delivered = 0
        while self._pending and delivered < count:
            offset, data = self._pending.pop(0)
            self.local.write(offset, data, WriteCategory.META)
            delivered += 1
        return delivered


class MemoryChannelInterface:
    """The per-node Memory Channel adapter.

    Args:
        node_name: owner label, for diagnostics.
        san: link parameters (defaults to Memory Channel II).
        write_buffers / write_buffer_bytes: the sending CPU's buffer
            geometry (6 x 32 bytes on the 21164A).
    """

    def __init__(
        self,
        node_name: str = "node",
        san: SanSpec = MEMORY_CHANNEL_II,
        write_buffers: int = 6,
        write_buffer_bytes: int = 32,
        observer=None,
    ):
        self.node_name = node_name
        self.san = san
        self._trace = PacketTrace()
        self.observer = resolve_observer(observer)
        self._metric_prefix = f"san.{node_name}"
        self.write_buffer = writebuffer_model(
            num_buffers=write_buffers,
            block_bytes=write_buffer_bytes,
            on_packet=self.record_packet,
        )
        self._mappings: List[TransmitMapping] = []
        self._next_io_base = 0x8000_0000
        self._crashed = False
        self.io_stores = 0  # number of I/O-space store instructions issued
        self.bytes_by_category: Dict[WriteCategory, int] = {}
        # Fast path: stores whose write-buffer simulation is deferred
        # to the next barrier / statistics read (same order, same
        # packets). _pending_start_empty remembers whether the buffers
        # were drained when the batch began, which is what makes the
        # batch replay-cacheable as a pure function.
        self._pending: List[Tuple[int, int]] = []
        self._pending_start_empty = False

    # -- mapping management ------------------------------------------------

    def map_remote(self, remote: MemoryRegion, name: str = "") -> TransmitMapping:
        """Create a transmit window onto ``remote``.

        The kernel and remote CPU are involved only here, at mapping
        time — never per-write.
        """
        self._check_alive()
        mapping = TransmitMapping(self, self._next_io_base, remote, name)
        self._next_io_base += _align_up(remote.size, 8192)
        self._mappings.append(mapping)
        return mapping

    @property
    def mappings(self) -> List[TransmitMapping]:
        return list(self._mappings)

    # -- transmission --------------------------------------------------------

    @property
    def trace(self) -> PacketTrace:
        """The packet trace; reading it settles any deferred stores so
        the histogram is exactly what the slow path would show."""
        self._flush_pending()
        return self._trace

    def record_packet(self, size: int) -> None:
        """Sink for write-buffer drains: accounts the packet in the
        link-time trace and, when observed, in the metrics registry."""
        self._trace.record(size)
        if self.observer.enabled:
            self.observer.count(f"{self._metric_prefix}.packets")
            self.observer.count(f"{self._metric_prefix}.packet_bytes", size)

    def _flush_pending(self) -> None:
        """Push deferred stores through the write buffers (in original
        order) without draining them — packets fall out exactly where
        buffer fills and FIFO displacement would have emitted them."""
        if self._pending:
            pending, self._pending = self._pending, []
            self.write_buffer.write_batch(pending)

    def _check_alive(self) -> None:
        if self._crashed:
            raise CrashedError(f"Memory Channel interface of {self.node_name} is down")

    def _transmit(
        self,
        mapping: TransmitMapping,
        offset: int,
        data: bytes,
        category: WriteCategory,
    ) -> None:
        self._check_alive()
        if mapping not in self._mappings:
            raise NotMappedError(f"mapping {mapping.name!r} is not installed")
        length = len(data)
        if length == 0:
            return
        if offset < 0 or offset + length > mapping.size:
            raise NotMappedError(
                f"I/O-space write [{offset}, {offset + length}) outside "
                f"window {mapping.name!r} of size {mapping.size}"
            )
        # Packet formation: the store stream enters the CPU write
        # buffers at its I/O-space address; coalescing across *distinct
        # mappings* is still per 32-byte block, which the disjoint
        # io_base values prevent from ever merging.
        self.io_stores += 1
        if _fastpath.enabled() and not self.observer.enabled:
            # Batched store pipeline: defer the write-buffer simulation
            # to the next barrier (or statistics read). Data movement
            # and byte accounting stay inline; only the packet-formation
            # loop moves out of the per-store path.
            pending = self._pending
            if not pending:
                self._pending_start_empty = not self.write_buffer.open_buffers
            pending.append((mapping.io_base + offset, length))
            if len(pending) >= _PENDING_LIMIT:
                self._flush_pending()
        else:
            if self.observer.enabled:
                self.observer.count(f"{self._metric_prefix}.io_stores")
                self.observer.count(f"{self._metric_prefix}.bytes", length)
                self.observer.gauge(
                    f"{self._metric_prefix}.wb_open_buffers",
                    self.write_buffer.open_buffers,
                )
            self.write_buffer.write(mapping.io_base + offset, length)
        # DMA into the remote physical memory (remote CPU uninvolved).
        mapping.remote.write(offset, data, category)
        mapping.bytes_sent += length
        mapping.bytes_by_category[category] = (
            mapping.bytes_by_category.get(category, 0) + length
        )
        self.bytes_by_category[category] = (
            self.bytes_by_category.get(category, 0) + length
        )

    def _transmit_trusted(
        self,
        mapping: TransmitMapping,
        offset: int,
        data,
        category: WriteCategory,
    ) -> None:
        """Fast-lane transmit for pre-validated senders (the write
        doubling bindings): the mapping is known installed and the
        store known in-bounds, because it mirrors a local write that
        was just bounds-checked against the same-size twin. Identical
        accounting and data movement to :meth:`_transmit`; only the
        re-validation and the per-store call chain are skipped.
        """
        if self._crashed:
            self._check_alive()
        length = len(data)
        if length == 0:
            return
        self.io_stores += 1
        pending = self._pending
        if not pending:
            self._pending_start_empty = not self.write_buffer.open_buffers
        pending.append((mapping.io_base + offset, length))
        if len(pending) >= _PENDING_LIMIT:
            self._flush_pending()
        remote = mapping.remote
        if (
            remote._observers
            or remote._fast_observers
            or remote._protected
            or remote._crashed
        ):
            remote.write(offset, bytes(data), category)
        else:
            remote.data[offset : offset + length] = data
            remote.writes_observed += 1
            remote.bytes_written += length
        mapping.bytes_sent += length
        by_category = mapping.bytes_by_category
        by_category[category] = by_category.get(category, 0) + length
        by_category = self.bytes_by_category
        by_category[category] = by_category.get(category, 0) + length

    def _transmit_uncoalesced(
        self,
        mapping: TransmitMapping,
        offset: int,
        data: bytes,
        category: WriteCategory,
        word_bytes: int,
    ) -> None:
        """Transmit word-by-word, flushing between stores so no
        coalescing happens (see TransmitMapping.write_uncoalesced)."""
        for cursor in range(0, len(data), word_bytes):
            chunk = data[cursor : cursor + word_bytes]
            self._transmit(mapping, offset + cursor, chunk, category)
            self.barrier()

    def barrier(self) -> None:
        """Drain the write buffers (commit-ordering point)."""
        pending = self._pending
        if pending and self._pending_start_empty:
            # The whole batch ran buffers-empty to barrier: a pure
            # store schedule. Replay its packet sequence from the
            # cache (simulating it once on a miss).
            self._pending = []
            buffer = self.write_buffer
            sizes, total_bytes = GLOBAL_REPLAY_CACHE.drain_sizes(
                pending, buffer.num_buffers, buffer.block_bytes
            )
            buffer.account_replayed(sizes, total_bytes)
            return
        self._flush_pending()
        self.write_buffer.barrier()

    # -- failure ---------------------------------------------------------------

    def crash(self) -> None:
        """Take the interface down with its node."""
        # Settle deferred stores first: they hit the wire before the
        # crash, so their displacement packets belong in the trace.
        self._flush_pending()
        self._crashed = True

    def reboot(self) -> None:
        self._crashed = False
        self._pending.clear()
        self.write_buffer.reset()

    # -- statistics --------------------------------------------------------------

    @property
    def bytes_sent(self) -> int:
        return sum(self.bytes_by_category.values())

    def link_time_us(self) -> float:
        """Link occupancy consumed by everything sent so far."""
        return self.trace.link_time_us(self.san)

    def reset_stats(self) -> None:
        # Deferred stores are simply dropped: the slow path would have
        # simulated them into state this method clears anyway.
        self._pending.clear()
        self._trace.clear()
        self.write_buffer.reset()
        self.io_stores = 0
        self.bytes_by_category.clear()
        for mapping in self._mappings:
            mapping.bytes_sent = 0
            mapping.bytes_by_category.clear()


@dataclass
class DoubledWrite:
    """Helper performing the canonical "write doubling" pattern: every
    store goes to the ordinary local copy *and* to the I/O-space window
    so the remote copy tracks it.
    """

    local: MemoryRegion
    mapping: TransmitMapping

    def write(
        self,
        offset: int,
        data: bytes,
        category: WriteCategory = WriteCategory.MODIFIED,
    ) -> None:
        self.local.write(offset, data, category)
        self.mapping.write(offset, data, category)

    def read(self, offset: int, length: int) -> bytes:
        """Reads always come from the local copy (remote reads are not
        supported by the hardware)."""
        return self.local.read(offset, length)


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)
