"""The bandwidth microbenchmark behind Figure 1.

The paper measures effective process-to-process bandwidth by writing a
large region with varying strides: a stride of one produces 32-byte
Memory Channel packets, a stride of two 16-byte packets, and so on
down to 4-byte packets (Section 2.3). We reproduce the experiment
against the model: issue the same strided store pattern into a
transmit mapping, collect the packet trace the write buffers emit, and
report bytes / link-time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hardware.specs import SanSpec, MEMORY_CHANNEL_II
from repro.memory.region import memory_region
from repro.san.memory_channel import MemoryChannelInterface

_WORD = 4  # the Alpha issues 4-byte stores in the paper's test program


@dataclass(frozen=True)
class BandwidthPoint:
    """One point of the Figure 1 curve."""

    packet_bytes: int
    effective_mb_per_s: float
    packets: int


def measure_effective_bandwidth(
    packet_bytes: int,
    region_bytes: int = 1 << 20,
    san: SanSpec = MEMORY_CHANNEL_II,
) -> BandwidthPoint:
    """Measure effective bandwidth for packets of ``packet_bytes``.

    Writes ``region_bytes`` of data as runs of ``packet_bytes``
    contiguous bytes separated by a stride of 32 bytes — exactly the
    strided pattern of the paper's test program — and reports the
    bytes-per-link-time the emitted packet trace achieves.
    """
    if packet_bytes < _WORD or packet_bytes > san.max_packet_bytes:
        raise ValueError(
            f"packet size {packet_bytes} outside [{_WORD}, {san.max_packet_bytes}]"
        )
    if packet_bytes % _WORD:
        raise ValueError("packet size must be a multiple of the 4-byte word")

    remote = memory_region("pingpong-remote", region_bytes)
    interface = MemoryChannelInterface("pingpong-sender", san)
    mapping = interface.map_remote(remote)

    payload = bytes(_WORD)
    block = 32
    for base in range(0, region_bytes, block):
        # One run of `packet_bytes` contiguous 4-byte stores per block.
        for word in range(packet_bytes // _WORD):
            offset = base + word * _WORD
            if offset + _WORD <= region_bytes:
                mapping.write(offset, payload)
    interface.barrier()

    return BandwidthPoint(
        packet_bytes=packet_bytes,
        effective_mb_per_s=interface.trace.effective_bandwidth_mb_per_s(san),
        packets=interface.trace.packets,
    )


def run_figure1_sweep(
    region_bytes: int = 1 << 20,
    san: SanSpec = MEMORY_CHANNEL_II,
    sizes: List[int] = None,
) -> List[BandwidthPoint]:
    """Reproduce Figure 1: effective bandwidth at 4/8/16/32-byte packets."""
    if sizes is None:
        sizes = [4, 8, 16, 32]
    return [
        measure_effective_bandwidth(size, region_bytes, san) for size in sizes
    ]


def measure_latency_us(san: SanSpec = MEMORY_CHANNEL_II) -> float:
    """Uncontended one-way latency for a 4-byte write (the paper's
    ping-pong measures 3.3 us)."""
    return san.latency_us
