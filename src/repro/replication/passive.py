"""Primary-backup with a passive backup (Section 5).

The backup CPU does nothing during normal operation: all replicated
state travels by write doubling on the primary. For each engine
version the replicated region set follows the paper:

* Version 0 replicates everything — database, control word, and the
  whole heap with its records, pre-images and allocator bookkeeping.
  This is the "straightforward" implementation of Section 3.
* Versions 1 and 2 replicate the database, control word and mirror,
  but keep the set_range coordinate array primary-local
  (Section 5.1): cheaper in the common case, at the price of the
  backup restoring the *whole* database from the mirror on failover.
  ``ship_undo_log=True`` disables the optimization (ablation).
* Version 3 replicates the database, control word and inline undo
  log; the backup recovers by rolling the log back, exactly like a
  local crash recovery.

Commit is 1-safe: :meth:`PassiveReplicatedSystem.commit_transaction`
drains the write buffers (so the commit record is on the wire) but
does not wait for any acknowledgment.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import FailoverError
from repro.hardware.specs import SanSpec, MEMORY_CHANNEL_II
from repro.memory.mapping import AddressSpace
from repro.memory.region import MemoryRegion
from repro.memory.rio import RioMemory
from repro.obs.observer import resolve_observer
from repro.obs.spans import (
    PHASE_BARRIER,
    PHASE_DOUBLING,
    PHASE_ENGINE,
    CommitSpanRecorder,
    PhaseCostModel,
    counters_snapshot,
)
from repro.san.memory_channel import MemoryChannelInterface
from repro.replication.commit_safety import CommitSafety
from repro.replication.writethrough import WriteThroughReplica
from repro.vista.api import EngineConfig, TransactionEngine, HINT_RANDOM
from repro.vista.factory import engine_class


class PassiveReplicatedSystem:
    """A primary engine whose replicated regions are write-doubled to a
    passive backup node.

    The transaction API is forwarded to the primary engine; the write
    observers installed on the replicated regions do the doubling.
    """

    def __init__(
        self,
        version: str,
        config: Optional[EngineConfig] = None,
        san: SanSpec = MEMORY_CHANNEL_II,
        ship_undo_log: bool = False,
        primary_name: str = "primary",
        backup_name: str = "backup",
        observer=None,
    ):
        self.version = version
        self.config = config if config is not None else EngineConfig()
        self.san = san
        self.ship_undo_log = ship_undo_log
        self.observer = resolve_observer(observer)

        self.primary_rio = RioMemory(primary_name)
        self.backup_rio = RioMemory(backup_name)
        self.space = AddressSpace()
        self.engine: TransactionEngine = engine_class(version).create(
            self.primary_rio, self.config, self.space
        )
        self.interface = MemoryChannelInterface(
            primary_name, san, observer=self.observer
        )
        self.replica = WriteThroughReplica(self.interface, self.backup_rio)

        replicated = list(self.engine.REPLICATED)
        if ship_undo_log:
            replicated += list(self.engine.LOCAL)
        self.replicated_names = tuple(replicated)
        # Mirror updates stream through cache-missing lines, so their
        # doubled stores leave as isolated word packets (Section 8's
        # "no aggregation" observation for the mirroring protocols).
        self.replica.bind_all(
            self.engine.regions,
            self.replicated_names,
            fragmented_names=("mirror",),
        )
        self._failed_over = False
        self._txn_wire_start = 0
        # Causal commit spans: phase durations are modeled from this
        # commit's own counter and packet-trace deltas (repro.obs.spans),
        # so recording stays a pure observation of the run.
        if self.observer.enabled:
            self._spans = CommitSpanRecorder(
                self.observer, "replication.passive"
            )
            self._phase_model = PhaseCostModel(san)
        else:
            self._spans = None
        self._txn_counters_base = ()
        self._txn_link_start = 0.0

    # -- data loading -----------------------------------------------------

    def initialize_data(self, offset: int, data: bytes) -> None:
        """Load initial contents on the primary (not counted as traffic)."""
        self.engine.initialize_data(offset, data)

    def sync_initial(self) -> None:
        """Ship the initial image to the backup (mapping-time copy)."""
        self.replica.sync_initial(self.engine.regions)

    # -- the transaction API ------------------------------------------------

    def begin_transaction(self) -> None:
        self.engine.begin_transaction()
        self._txn_wire_start = self.interface.bytes_sent
        if self._spans is not None:
            self._txn_counters_base = counters_snapshot(self.engine.counters)
            self._txn_link_start = self.interface.link_time_us()

    def set_range(self, offset: int, length: int, hint: str = HINT_RANDOM) -> None:
        self.engine.set_range(offset, length, hint)

    def write(self, offset: int, data: bytes) -> None:
        self.engine.write(offset, data)

    def read(self, offset: int, length: int) -> bytes:
        return self.engine.read(offset, length)

    def commit_transaction(self) -> None:
        """1-safe commit: complete locally, put the commit record on
        the wire, do not wait."""
        self.engine.commit_transaction()
        if self._spans is not None:
            # Link occupancy of the doubled transaction body, measured
            # before the commit barrier drains the residual buffers.
            link_at_commit = self.interface.link_time_us()
            doubling_us = link_at_commit - self._txn_link_start
        self.interface.barrier()
        if self.observer.enabled:
            doubled = self.interface.bytes_sent - self._txn_wire_start
            self.observer.count("replication.passive.commits")
            self.observer.count("replication.passive.wire_bytes", doubled)
            self.observer.event(
                "replication.passive", "commit",
                version=self.version, wire_bytes=doubled,
                safety=CommitSafety.ONE_SAFE.value,
            )
            self._spans.phase(
                PHASE_ENGINE,
                self._phase_model.engine_us(
                    self._txn_counters_base,
                    counters_snapshot(self.engine.counters),
                ),
            )
            self._spans.phase(PHASE_DOUBLING, doubling_us)
            self._spans.phase(
                PHASE_BARRIER,
                self.interface.link_time_us() - link_at_commit,
            )
            self._spans.finish(
                version=self.version, wire_bytes=doubled,
                safety=CommitSafety.ONE_SAFE.value,
            )

    def abort_transaction(self) -> None:
        self.engine.abort_transaction()
        self.interface.barrier()
        if self.observer.enabled:
            self.observer.count("replication.passive.aborts")

    # -- failure and takeover ---------------------------------------------------

    def fail_primary(self) -> None:
        """Crash the primary node (Rio keeps its memory safe but
        unavailable; its Memory Channel interface goes down)."""
        self.primary_rio.crash()
        self.interface.crash()
        self.replica.detach_all()

    def failover(self) -> TransactionEngine:
        """Backup takeover: recover a consistent engine on the backup.

        For the optimized mirror versions (no coordinate array on the
        backup) this restores the whole database from the mirror; the
        other versions run ordinary undo recovery on the replicated
        structures.
        """
        if self._failed_over:
            raise FailoverError("backup already took over")
        cls = engine_class(self.version)
        regions: Dict[str, MemoryRegion] = {}
        for name, size in cls.region_specs(self.config).items():
            if self.backup_rio.has_region(name):
                regions[name] = self.backup_rio.get_region(name)
            else:
                # Primary-local structures (e.g. the set_range array)
                # do not exist on the backup; takeover creates empty ones.
                regions[name] = self.backup_rio.create_region(name, size)
        backup_engine = cls(regions, self.config, fresh=False)
        mirror_based = self.version in ("v1", "v2") and not self.ship_undo_log
        if mirror_based:
            backup_engine.restore_from_mirror()
        else:
            backup_engine.recover()
        self._failed_over = True
        return backup_engine

    # -- accounting ----------------------------------------------------------------

    @property
    def traffic_bytes_by_category(self) -> Dict[str, int]:
        """Bytes sent to the backup, keyed by category value."""
        return {
            category.value: count
            for category, count in self.interface.bytes_by_category.items()
        }

    @property
    def total_bytes_sent(self) -> int:
        return self.interface.bytes_sent
