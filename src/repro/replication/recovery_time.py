"""Recovery time and availability analysis (extension).

The paper motivates replication with *availability*: Vista's data
survives a crash but is unavailable until the node reboots. It also
notes (Section 5.1) that the mirror versions trade faster failure-free
operation for a *longer recovery* — the backup must copy the entire
database from the mirror — "but since failure is the uncommon case,
this is a profitable tradeoff". This module quantifies both claims:

* per-design **takeover time** — failure detection plus the work the
  backup must do before serving (roll back an undo log, copy the whole
  mirror, or drain the redo ring);
* resulting **availability** against standalone Vista, whose downtime
  is a full OS reboot plus local recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

US_PER_SECOND = 1e6

#: Late-90s AlphaServer bulk memory copy: ~300 MB/s.
MEMCPY_BYTES_PER_US = 300.0

#: An OS reboot on the paper's hardware, dominated by firmware + Unix
#: boot; Rio's warm reboot avoids fsck but not the boot itself.
REBOOT_US = 90.0 * US_PER_SECOND


@dataclass(frozen=True)
class RecoveryProfile:
    """What a design must do between failure detection and service."""

    name: str
    detection_us: float
    bytes_to_restore: float
    fixed_work_us: float = 0.0
    needs_reboot: bool = False

    def takeover_us(self, memcpy_bytes_per_us: float = MEMCPY_BYTES_PER_US) -> float:
        work = self.bytes_to_restore / memcpy_bytes_per_us + self.fixed_work_us
        if self.needs_reboot:
            work += REBOOT_US
        return self.detection_us + work

    def downtime_seconds(self) -> float:
        return self.takeover_us() / US_PER_SECOND


def profiles_for(
    db_bytes: int,
    live_undo_bytes: float,
    ring_backlog_bytes: float,
    detection_us: float = 5_000.0,
) -> Dict[str, RecoveryProfile]:
    """Build the per-design recovery profiles.

    Args:
        db_bytes: database size (what the mirror versions must copy).
        live_undo_bytes: bytes of in-flight undo at the crash (what the
            log versions roll back — typically one transaction's worth).
        ring_backlog_bytes: unapplied redo at the crash (what the
            active backup drains — bounded by the ring size).
        detection_us: failure-detection latency (heartbeat timeout).
    """
    return {
        "standalone (Vista)": RecoveryProfile(
            "standalone (Vista)",
            detection_us=0.0,
            bytes_to_restore=live_undo_bytes,
            needs_reboot=True,
        ),
        "passive v0 (undo rollback)": RecoveryProfile(
            "passive v0 (undo rollback)",
            detection_us=detection_us,
            bytes_to_restore=live_undo_bytes,
        ),
        "passive v1/v2 (mirror restore)": RecoveryProfile(
            "passive v1/v2 (mirror restore)",
            detection_us=detection_us,
            bytes_to_restore=float(db_bytes),
        ),
        "passive v3 (log rollback)": RecoveryProfile(
            "passive v3 (log rollback)",
            detection_us=detection_us,
            bytes_to_restore=live_undo_bytes,
        ),
        "active (drain redo ring)": RecoveryProfile(
            "active (drain redo ring)",
            detection_us=detection_us,
            bytes_to_restore=ring_backlog_bytes,
        ),
    }


def one_safe_window_us(
    redo_link_time_per_txn_us: float,
    san_latency_us: float = 3.3,
    apply_us: float = 0.5,
) -> float:
    """Duration of the 1-safe vulnerability window per commit.

    After the primary's commit returns, the transaction is lost if the
    primary dies before the redo records cross the SAN and land in the
    backup's memory: one link occupancy for the transaction's packets,
    plus the wire latency, plus the backup's apply time. The paper
    calls this "a very short window of vulnerability (a few
    microseconds)" — this makes the number concrete.
    """
    return san_latency_us + redo_link_time_per_txn_us + apply_us


def availability(downtime_us_per_failure: float,
                 mtbf_seconds: float = 30 * 24 * 3600.0) -> float:
    """Steady-state availability for a given mean time between failures."""
    downtime_s = downtime_us_per_failure / US_PER_SECOND
    return mtbf_seconds / (mtbf_seconds + downtime_s)


def nines(value: float) -> float:
    """Availability expressed as a count of nines (e.g. 0.999 -> 3.0)."""
    import math

    if value >= 1.0:
        return float("inf")
    return -math.log10(1.0 - value)
