"""Primary-backup replication over the Memory Channel.

Two architectures, mirroring Sections 5 and 6 of the paper:

* **Passive backup** (:mod:`repro.replication.passive`) — the backup
  CPU is idle. Every update to the primary's replicated data
  structures is write-doubled through an I/O-space mapping into the
  backup's memory. Which structures are replicated depends on the
  engine version (the mirror versions keep their set_range array
  primary-local, Section 5.1).
* **Active backup** (:mod:`repro.replication.active`) — the primary
  ships a redo log through a circular buffer
  (:mod:`repro.replication.redo_log`); the backup CPU polls the
  producer pointer and applies committed changes to its own copy of
  the database, acknowledging through a consumer pointer written back
  over the SAN.

Both implement a **1-safe** commit by default (commit returns once the
primary's commit completes); 2-safe is available as an extension
(:mod:`repro.replication.commit_safety`).
"""

from repro.replication.writethrough import ReplicaBinding, WriteThroughReplica
from repro.replication.passive import PassiveReplicatedSystem
from repro.replication.redo_log import (
    RedoLogApplier,
    RedoLogProducer,
    RedoRecord,
    RedoTransaction,
)
from repro.replication.active import ActiveReplicatedSystem
from repro.replication.commit_safety import CommitSafety

__all__ = [
    "ReplicaBinding",
    "WriteThroughReplica",
    "PassiveReplicatedSystem",
    "RedoRecord",
    "RedoTransaction",
    "RedoLogProducer",
    "RedoLogApplier",
    "ActiveReplicatedSystem",
    "CommitSafety",
]
