"""Write-through replication of memory regions.

A :class:`ReplicaBinding` is the glue of the passive schemes: it
observes every write to a primary region and re-issues it ("write
doubling") into a Memory Channel transmit mapping backed by the
backup's copy of that region. The binding preserves the write's
category, so the backup-side traffic tables (Tables 2, 5) follow
directly from the engine's own categorized writes.

:class:`WriteThroughReplica` manages a set of bindings: it creates the
backup-side twin of each replicated region, installs the mappings and
observers, and can synchronize the initial image (which happens at
mapping time on the real hardware and is not counted as traffic).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro import fastpath as _fastpath
from repro.memory.region import MemoryRegion, WriteEvent
from repro.memory.rio import RioMemory
from repro.san.memory_channel import MemoryChannelInterface, TransmitMapping


class ReplicaBinding:
    """Forwards writes on ``local`` into ``mapping`` (write doubling).

    ``fragmented`` marks regions whose doubled stores do not coalesce:
    copying into a mirror streams through cache-missing lines, so the
    write buffer drains between word stores and each word leaves as
    its own Memory Channel packet (the paper's "mirroring protocols do
    not benefit at all from data aggregation", Section 8).
    """

    def __init__(
        self,
        local: MemoryRegion,
        mapping: TransmitMapping,
        fragmented: bool = False,
    ):
        self.local = local
        self.mapping = mapping
        self.fragmented = fragmented
        self.forwarded_writes = 0
        # The fast-observer form skips the per-store WriteEvent
        # allocation — this callback runs once per write of every
        # replicated region, the hottest call site in the repo.
        local.add_fast_observer(self._forward)

    def _forward(self, offset: int, length: int, category) -> None:
        mapping = self.mapping
        if (
            not self.fragmented
            and _fastpath.enabled()
            and not mapping.interface.observer.enabled
        ):
            # Fast lane: the local write that triggered this callback
            # was bounds-checked against a region the same size as the
            # window, so skip re-validation and the per-store call
            # chain (mapping.write -> _transmit). Accounting and data
            # movement are identical.
            mapping.interface._transmit_trusted(
                mapping,
                offset,
                self.local.data[offset : offset + length],
                category,
            )
        else:
            data = self.local.read(offset, length)
            if self.fragmented:
                mapping.write_uncoalesced(offset, data, category)
            else:
                mapping.write(offset, data, category)
        self.forwarded_writes += 1

    def _on_write(self, event: WriteEvent) -> None:
        """Classic observer form, kept for callers that already hold a
        WriteEvent (tests, manual forwarding)."""
        self._forward(event.offset, event.length, event.category)

    def detach(self) -> None:
        try:
            self.local.remove_fast_observer(self._forward)
        except ValueError:
            pass  # a node crash already cleared the region's observers


class WriteThroughReplica:
    """Backup-side twins plus the bindings that keep them current."""

    def __init__(
        self,
        interface: MemoryChannelInterface,
        backup_rio: RioMemory,
    ):
        self.interface = interface
        self.backup_rio = backup_rio
        self.bindings: List[ReplicaBinding] = []
        self.backup_regions: Dict[str, MemoryRegion] = {}

    def twin_region(self, name: str, size: int) -> MemoryRegion:
        """Create (or fetch) the backup's copy of region ``name``."""
        if self.backup_rio.has_region(name):
            return self.backup_rio.get_region(name)
        region = self.backup_rio.create_region(name, size)
        self.backup_regions[name] = region
        return region

    def bind(
        self, local: MemoryRegion, name: str, fragmented: bool = False
    ) -> ReplicaBinding:
        """Twin ``local`` on the backup and start write doubling."""
        remote = self.twin_region(name, local.size)
        mapping = self.interface.map_remote(remote, name=name)
        binding = ReplicaBinding(local, mapping, fragmented=fragmented)
        self.bindings.append(binding)
        return binding

    def bind_all(
        self,
        locals_by_name: Dict[str, MemoryRegion],
        names: Iterable[str],
        fragmented_names: Iterable[str] = (),
    ) -> None:
        fragmented = set(fragmented_names)
        for name in names:
            self.bind(locals_by_name[name], name, fragmented=name in fragmented)

    def sync_initial(self, locals_by_name: Dict[str, MemoryRegion]) -> None:
        """Copy current contents to the backup twins (mapping-time
        image; bypasses traffic accounting on purpose)."""
        for name, region in self.backup_regions.items():
            local = locals_by_name.get(name)
            if local is not None:
                region.load_snapshot(local.snapshot())

    def detach_all(self) -> None:
        for binding in self.bindings:
            binding.detach()
        self.bindings.clear()
