"""Primary-backup with an active backup (Section 6).

The primary runs the best local scheme (Version 3: inline undo log,
kept primary-local) for atomicity, and ships only a **redo log** of
committed changes through the circular buffer of
:mod:`repro.replication.redo_log`. The backup CPU applies the changes
to its own copy of the database and acknowledges via the consumer
pointer.

Less data crosses the SAN than in any passive scheme — no undo data,
no mirror — and the ring writes are perfectly contiguous, so they ride
in full 32-byte Memory Channel packets. The price is that the
meta-data now describes *modified data*, which is more scattered than
set_range areas and therefore needs more records (Section 6.2).

This is also the only version free of the Memory Channel address-space
limit: the mapped window is just the ring, not the database, so the
database can grow arbitrarily (Section 7 / Table 8).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import FailoverError
from repro.hardware.specs import SanSpec, MEMORY_CHANNEL_II
from repro.memory.mapping import AddressSpace
from repro.memory.rio import RioMemory
from repro.obs.observer import resolve_observer
from repro.obs.spans import (
    PHASE_APPLY,
    PHASE_BARRIER,
    PHASE_ENGINE,
    PHASE_SHIP,
    CommitSpanRecorder,
    PhaseCostModel,
    counters_snapshot,
)
from repro.san.memory_channel import MemoryChannelInterface
from repro.replication.commit_safety import CommitSafety
from repro.replication.redo_log import (
    RedoLogApplier,
    RedoLogProducer,
    RedoRecord,
    RedoTransaction,
)
from repro.vista.api import EngineConfig, HINT_RANDOM
from repro.vista.v3_inline_log import InlineLogEngine

_DEFAULT_RING_BYTES = 1 << 20


def coalesce_writes(writes: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge overlapping/adjacent (offset, length) write extents.

    The redo log ships each modified byte once per transaction even if
    it was written several times; later values win because the data is
    read from the database at commit time.
    """
    if not writes:
        return []
    ordered = sorted(writes)
    merged = [ordered[0]]
    for offset, length in ordered[1:]:
        last_offset, last_length = merged[-1]
        if offset <= last_offset + last_length:
            merged[-1] = (
                last_offset,
                max(last_length, offset + length - last_offset),
            )
        else:
            merged.append((offset, length))
    return merged


class ActiveReplicatedSystem:
    """A Version 3 primary plus an active, redo-applying backup."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        san: SanSpec = MEMORY_CHANNEL_II,
        ring_bytes: int = _DEFAULT_RING_BYTES,
        safety: CommitSafety = CommitSafety.ONE_SAFE,
        auto_apply: bool = True,
        primary_name: str = "primary",
        backup_name: str = "backup",
        observer=None,
    ):
        self.config = config if config is not None else EngineConfig()
        self.san = san
        self.safety = safety
        self.auto_apply = auto_apply
        self.observer = resolve_observer(observer)

        # Primary: a fully local Version 3 engine.
        self.primary_rio = RioMemory(primary_name)
        self.space = AddressSpace()
        self.engine = InlineLogEngine.create(
            self.primary_rio, self.config, self.space
        )

        # Backup: its own database copy and the redo ring.
        self.backup_rio = RioMemory(backup_name)
        self.backup_db = self.backup_rio.create_region("db", self.config.db_bytes)
        self.ring = self.backup_rio.create_region("redo-ring", ring_bytes + 8)

        # Primary -> backup: the ring. Backup -> primary: the consumer
        # pointer, written through the backup's own interface.
        self.primary_interface = MemoryChannelInterface(
            primary_name, san, observer=self.observer
        )
        self.backup_interface = MemoryChannelInterface(
            backup_name, san, observer=self.observer
        )
        self.consumer_region = self.primary_rio.create_region("consumer-seq", 8)
        ring_mapping = self.primary_interface.map_remote(self.ring, name="redo-ring")
        ack_mapping = self.backup_interface.map_remote(
            self.consumer_region, name="consumer-seq"
        )
        self.producer = RedoLogProducer(
            ring_mapping, self.consumer_region, observer=self.observer
        )
        self.applier = RedoLogApplier(
            self.ring, self.backup_db, ack_mapping, observer=self.observer
        )

        if self.observer.enabled:
            self._spans = CommitSpanRecorder(
                self.observer, "replication.active"
            )
            self._phase_model = PhaseCostModel(san)
        else:
            self._spans = None
        self._txn_counters_base = ()
        self._txn_writes: List[Tuple[int, int]] = []
        self._failed_over = False
        self.redo_records_shipped = 0
        self.redo_bytes_shipped = 0
        self.lost_window_transactions = 0

    # -- data loading ------------------------------------------------------

    def initialize_data(self, offset: int, data: bytes) -> None:
        self.engine.initialize_data(offset, data)

    def sync_initial(self) -> None:
        """Ship the initial image to the backup (one-time bulk copy,
        not part of the measured transaction traffic)."""
        self.backup_db.load_snapshot(self.engine.db.snapshot())

    # -- the transaction API ----------------------------------------------------

    def begin_transaction(self) -> None:
        self.engine.begin_transaction()
        self._txn_writes = []
        if self._spans is not None:
            self._txn_counters_base = counters_snapshot(self.engine.counters)

    def set_range(self, offset: int, length: int, hint: str = HINT_RANDOM) -> None:
        self.engine.set_range(offset, length, hint)

    def write(self, offset: int, data: bytes) -> None:
        self.engine.write(offset, data)
        self._txn_writes.append((offset, len(data)))

    def read(self, offset: int, length: int) -> bytes:
        return self.engine.read(offset, length)

    def _build_redo(self) -> RedoTransaction:
        records = tuple(
            RedoRecord(offset, self.engine.db.read(offset, length))
            for offset, length in coalesce_writes(self._txn_writes)
        )
        return RedoTransaction(records)

    def commit_transaction(self) -> None:
        """Commit locally, then ship the redo log.

        1-safe: the local commit is the commit point; a primary crash
        between it and the publish loses the transaction on the backup
        (the paper's few-microsecond window). 2-safe additionally
        drains the backup before returning.
        """
        redo = self._build_redo()
        self.engine.commit_transaction()
        if self._spans is not None:
            engine_after = counters_snapshot(self.engine.counters)
            link_before = self.primary_interface.link_time_us()
            records_before = self.applier.records_applied
            payload_before = self.applier.bytes_applied
        self.producer.publish(redo, drain=self.applier.apply_available)
        self.redo_records_shipped += len(redo.records)
        self.redo_bytes_shipped += redo.wire_bytes()
        self._txn_writes = []
        if self.safety is CommitSafety.TWO_SAFE or self.auto_apply:
            self.applier.apply_available()
        if self.observer.enabled:
            lag = self.producer.produced - self.applier.consumed
            self.observer.count("replication.active.commits")
            self.observer.count(
                "replication.active.redo_records", len(redo.records)
            )
            self.observer.count(
                "replication.active.redo_bytes", redo.wire_bytes()
            )
            self.observer.gauge("replication.active.ring_lag_bytes", lag)
            self.observer.event(
                "replication.active", "commit",
                records=len(redo.records), wire_bytes=redo.wire_bytes(),
                ring_lag_bytes=lag, safety=self.safety.value,
            )
            self._spans.phase(
                PHASE_ENGINE,
                self._phase_model.engine_us(
                    self._txn_counters_base, engine_after
                ),
            )
            self._spans.phase(
                PHASE_SHIP,
                self.primary_interface.link_time_us() - link_before,
            )
            self._spans.phase(
                PHASE_APPLY,
                self._phase_model.apply_us(
                    self.applier.records_applied - records_before,
                    self.applier.bytes_applied - payload_before,
                ),
            )
            self._spans.phase(
                PHASE_BARRIER, self.safety.barrier_phase_us(self.san)
            )
            self._spans.finish(
                records=len(redo.records), wire_bytes=redo.wire_bytes(),
                ring_lag_bytes=lag, safety=self.safety.value,
            )

    def commit_transaction_losing_publish(self) -> None:
        """Commit locally but crash before the redo publish — the
        1-safe vulnerability window made injectable for tests."""
        self.engine.commit_transaction()
        self.lost_window_transactions += 1
        self._txn_writes = []
        self.fail_primary()

    def abort_transaction(self) -> None:
        self.engine.abort_transaction()
        self._txn_writes = []

    # -- failure and takeover ------------------------------------------------------

    def fail_primary(self) -> None:
        self.primary_rio.crash()
        self.primary_interface.crash()

    def failover(self) -> InlineLogEngine:
        """Backup takeover: drain the ring, then serve from the backup's
        database copy with a fresh local Version 3 engine."""
        if self._failed_over:
            raise FailoverError("backup already took over")
        self.applier.apply_available()
        regions = {
            "db": self.backup_db,
            "control": self.backup_rio.create_region("control", 4096),
            "ulog": self.backup_rio.create_region("ulog", self.config.log_bytes),
        }
        self._failed_over = True
        return InlineLogEngine(regions, self.config, fresh=True)

    # -- accounting -------------------------------------------------------------------

    @property
    def traffic_bytes_by_category(self) -> Dict[str, int]:
        """Primary-to-backup bytes by category (the consumer-pointer
        acknowledgments flow the other way and are reported separately)."""
        return {
            category.value: count
            for category, count in self.primary_interface.bytes_by_category.items()
        }

    @property
    def ack_bytes(self) -> int:
        return self.backup_interface.bytes_sent

    @property
    def total_bytes_sent(self) -> int:
        return self.primary_interface.bytes_sent
