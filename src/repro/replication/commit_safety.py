"""Commit-safety levels.

The paper's systems are **1-safe** (Section 2.1, following Gray &
Reuter): commit returns as soon as the commit completes on the
primary, leaving a window of a few microseconds in which a failure
loses a committed transaction. **2-safe** closes the window by making
commit wait until the backup durably has the transaction, at the price
of a SAN round trip per commit. The paper ships 1-safe only; 2-safe is
implemented here as an extension and quantified in an ablation
benchmark.
"""

from __future__ import annotations

import enum

from repro.hardware.specs import SanSpec


class CommitSafety(enum.Enum):
    """How much of the commit pipeline a commit call waits for."""

    ONE_SAFE = "1-safe"
    TWO_SAFE = "2-safe"

    @property
    def waits_for_backup(self) -> bool:
        """Whether commit may return only after the backup durably has
        the transaction. This is the contract the trace auditor holds
        2-safe commits to: a ``commit`` event claiming 2-safe with redo
        still in flight (nonzero ring lag) is a violation."""
        return self is CommitSafety.TWO_SAFE

    def extra_commit_latency_us(self, san: SanSpec) -> float:
        """Added per-commit latency versus local-only commit.

        1-safe adds nothing (the write-through drains asynchronously).
        2-safe waits for the commit record to reach the backup and for
        the acknowledgment to come back: one SAN round trip.
        """
        if self is CommitSafety.ONE_SAFE:
            return 0.0
        return 2.0 * san.latency_us

    def barrier_phase_us(self, san: SanSpec) -> float:
        """Duration of the commit span's ``barrier`` phase under this
        safety level — the synchronous wait the pipeline cannot hide
        (:mod:`repro.obs.spans` charges it after the ship phase)."""
        return self.extra_commit_latency_us(san)
