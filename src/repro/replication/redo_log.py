"""The redo-log circular buffer of the active-backup scheme (Section 6.1).

The redo log is a circular buffer with two pointers. The *producer*
pointer is maintained by the primary: at commit, the primary writes
the transaction's redo records through the Memory Channel and only
after all of the entries are written does it advance the end-of-buffer
pointer. The *consumer* pointer is maintained by the backup: after
applying a transaction to its copy of the database it writes its
pointer back through the SAN so the primary can tell how much buffer
space is free. If the log fills, the primary must block.

Pointers are monotonically increasing byte sequence numbers; the ring
position is ``sequence % capacity``, which makes wraparound arithmetic
trivial and gives an unambiguous full/empty distinction.

Wire format of one transaction::

    u32 record_count
    record_count * ( u32 db_offset, u32 length, length bytes of data )

Record headers and the producer pointer are META traffic; record
payloads are MODIFIED traffic — giving Table 7's breakdown directly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import CrashedError, RedoLogFullError
from repro.memory.region import MemoryRegion, WriteCategory
from repro.obs.observer import resolve_observer
from repro.san.memory_channel import TransmitMapping

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")
_HEADER = struct.Struct("<II")

_PRODUCER_OFFSET = 0
_DATA_START = 8

COUNT_BYTES = _U32.size
HEADER_BYTES = _HEADER.size


@dataclass(frozen=True)
class RedoRecord:
    """One modified range: where it goes and the bytes to install."""

    db_offset: int
    data: bytes

    @property
    def length(self) -> int:
        return len(self.data)

    def wire_bytes(self) -> int:
        return HEADER_BYTES + self.length


@dataclass(frozen=True)
class RedoTransaction:
    """A committed transaction's redo records, in write order."""

    records: Tuple[RedoRecord, ...]

    def wire_bytes(self) -> int:
        return COUNT_BYTES + sum(record.wire_bytes() for record in self.records)


class RedoLogProducer:
    """Primary-side writer of the redo ring.

    Args:
        ring_mapping: transmit window onto the backup's ring region.
        consumer_region: the primary-local region into which the backup
            writes its consumer pointer.
    """

    def __init__(
        self,
        ring_mapping: TransmitMapping,
        consumer_region: MemoryRegion,
        observer=None,
    ):
        self.mapping = ring_mapping
        self.consumer_region = consumer_region
        self.observer = resolve_observer(observer)
        self.capacity = ring_mapping.size - _DATA_START
        self.produced = 0
        self.transactions_published = 0
        self.blocked_publishes = 0
        self._publish_pointer()

    # -- pointers -------------------------------------------------------------

    def _publish_pointer(self) -> None:
        self.mapping.write(
            _PRODUCER_OFFSET, _U64.pack(self.produced), WriteCategory.META
        )

    @property
    def consumed(self) -> int:
        return _U64.unpack(self.consumer_region.read(0, 8))[0]

    def free_bytes(self) -> int:
        return self.capacity - (self.produced - self.consumed)

    # -- publishing ---------------------------------------------------------------

    def _ring_write(self, sequence: int, data: bytes, category: WriteCategory) -> None:
        """Write ``data`` at ring position of ``sequence`` (wrap-aware)."""
        position = _DATA_START + sequence % self.capacity
        first = min(len(data), _DATA_START + self.capacity - position)
        self.mapping.write(position, data[:first], category)
        if first < len(data):
            self.mapping.write(_DATA_START, data[first:], category)

    def try_publish(self, txn: RedoTransaction) -> bool:
        """Publish one committed transaction; False if the ring lacks
        space (the caller must let the backup drain, then retry)."""
        needed = txn.wire_bytes()
        if needed > self.capacity:
            raise RedoLogFullError(
                f"transaction of {needed} bytes exceeds ring capacity "
                f"{self.capacity}"
            )
        if needed > self.free_bytes():
            self.blocked_publishes += 1
            if self.observer.enabled:
                self.observer.count("redo.ring.blocked")
                self.observer.event(
                    "redo.producer", "ring.blocked",
                    needed=needed, free=self.free_bytes(),
                    capacity=self.capacity,
                )
            return False
        cursor = self.produced
        self._ring_write(cursor, _U32.pack(len(txn.records)), WriteCategory.META)
        cursor += COUNT_BYTES
        for record in txn.records:
            self._ring_write(
                cursor,
                _HEADER.pack(record.db_offset, record.length),
                WriteCategory.META,
            )
            cursor += HEADER_BYTES
            self._ring_write(cursor, record.data, WriteCategory.MODIFIED)
            cursor += record.length
        # All entries written; only now advance the end-of-buffer
        # pointer so the backup never sees a partial transaction. The
        # interface preserves store order (VIA-style), so no barrier is
        # needed; successive pointer stores coalesce in their write
        # buffer, which is why the redo stream's packet count stays at
        # roughly bytes/32 per transaction.
        self.produced = cursor
        self._publish_pointer()
        self.transactions_published += 1
        if self.observer.enabled:
            # The produced/consumed/capacity triple is what lets the
            # trace auditor prove the producer never laps the consumer.
            self.observer.event(
                "redo.producer", "ring.publish",
                produced=self.produced, consumed=self.consumed,
                capacity=self.capacity, wire_bytes=needed,
            )
        return True

    def publish(
        self, txn: RedoTransaction, drain: Optional[Callable[[], int]] = None
    ) -> None:
        """Publish, blocking on a full ring by invoking ``drain`` (the
        backup's applier) until space frees up."""
        while not self.try_publish(txn):
            if drain is None or drain() == 0:
                raise RedoLogFullError(
                    "redo ring full and the backup is not draining"
                )


class RedoLogApplier:
    """Backup-side consumer: busy-waits on the producer pointer and
    applies committed transactions to the backup's database copy."""

    def __init__(
        self,
        ring_region: MemoryRegion,
        db_region: MemoryRegion,
        consumer_mapping: TransmitMapping,
        observer=None,
    ):
        self.ring = ring_region
        self.db = db_region
        self.consumer_mapping = consumer_mapping
        self.observer = resolve_observer(observer)
        self.capacity = ring_region.size - _DATA_START
        self.consumed = 0
        self.transactions_applied = 0
        self.records_applied = 0
        self.bytes_applied = 0

    @property
    def produced(self) -> int:
        return _U64.unpack(self.ring.read(_PRODUCER_OFFSET, 8))[0]

    def _ring_read(self, sequence: int, length: int) -> bytes:
        position = _DATA_START + sequence % self.capacity
        first = min(length, _DATA_START + self.capacity - position)
        data = self.ring.read(position, first)
        if first < length:
            data += self.ring.read(_DATA_START, length - first)
        return data

    def _ack(self) -> None:
        """Write the consumer pointer back to the primary so it can
        reuse the acknowledged buffer space. An acknowledgment aimed at
        a crashed primary simply disappears (the DMA has no target)."""
        try:
            self.consumer_mapping.write(
                0, _U64.pack(self.consumed), WriteCategory.META
            )
        except CrashedError:
            pass

    def apply_one(self) -> bool:
        """Apply one whole transaction if available; returns True if
        one was applied."""
        if self.consumed >= self.produced:
            return False
        cursor = self.consumed
        (count,) = _U32.unpack(self._ring_read(cursor, COUNT_BYTES))
        cursor += COUNT_BYTES
        for _ in range(count):
            offset, length = _HEADER.unpack(self._ring_read(cursor, HEADER_BYTES))
            cursor += HEADER_BYTES
            data = self._ring_read(cursor, length)
            cursor += length
            self.db.write(offset, data, WriteCategory.MODIFIED)
            self.records_applied += 1
            self.bytes_applied += length
        self.consumed = cursor
        self.transactions_applied += 1
        self._ack()
        if self.observer.enabled:
            self.observer.event(
                "redo.applier", "ring.apply",
                consumed=self.consumed, produced=self.produced,
                capacity=self.capacity, records=count,
            )
        return True

    def apply_available(self) -> int:
        """Apply every complete transaction currently in the ring."""
        applied = 0
        while self.apply_one():
            applied += 1
        return applied
