"""Simulator-core kernels: C-speed inner loops for the hot primitives.

The measurement pipeline spends its wall-clock in a handful of tiny
loops executed millions of times: comparing 4-byte words in
``diff_runs`` (Version 2's mirror refresh) and pushing/popping
simulation events. This module holds the data kernels; the event-queue
counterpart (:class:`repro.sim.events.BucketedEventQueue`) lives with
the simulator.

Discipline is the same as the rest of :mod:`repro.fastpath`: every
kernel has a pure-Python reference implementation that stays live
under ``REPRO_FASTPATH=0``, and equivalence tests (Hypothesis plus the
golden experiment grid) prove the two agree on every input shape.

**The diff kernel.** ``diff_runs_fast`` converts both buffers to
Python ints once (``int.from_bytes`` — one C pass each) and XORs them
in C; equal regions are zero in the result. It then alternates two
C-speed searches over the XOR: ``(x & -x).bit_length()`` finds the
next differing word in one big-int operation regardless of how long
the equal gap is, and an aligned ``bytes.find`` of a zero word over
``x.to_bytes(...)`` finds where the differing run ends without
touching the words in between. Buffers are processed in fixed-size
chunks so big-int shifts stay small and equal chunks are skipped at
``memcmp`` speed, keeping the kernel linear for any input shape —
all-equal, all-different, and everything between.
"""

from __future__ import annotations

from typing import List, Tuple

import repro.fastpath

#: Chunk size, in words, for the big-int diff scan. Chunking bounds
#: every big-int shift to an 8 KiB integer (at the default 4-byte
#: word) so the scan stays O(n) even for buffers with many runs.
_CHUNK_WORDS = 2048

_WORD = 4  # diff granularity: the Alpha writes in 4-byte words


def _run_end(xb: bytes, start: int, chunk_words: int, word: int, zero: bytes) -> int:
    """First word index > ``start`` whose XOR word is zero (the end of
    the differing run opening at ``start``), or ``chunk_words``.

    ``bytes.find`` locates ``word`` consecutive zero bytes at C speed;
    an occurrence can straddle a word boundary between two nonzero
    words, so the (at most two) aligned candidate words it implicates
    are verified with direct slice compares before moving on.
    """
    search = (start + 1) * word
    limit = chunk_words * word
    while search < limit:
        found = xb.find(zero, search)
        if found < 0:
            return chunk_words
        candidate = found // word
        base = candidate * word
        if xb[base : base + word] == zero:
            return candidate
        base += word
        if base < limit and xb[base : base + word] == zero:
            return candidate + 1
        search = base + word
    return chunk_words


def diff_runs_fast(
    old: bytes, new: bytes, word: int = _WORD
) -> List[Tuple[int, int]]:
    """Big-int XOR kernel equivalent of
    :func:`repro.vista.v2_mirror_diff.diff_runs`.

    Returns the identical maximal word-aligned ``(offset, length)``
    runs of differing words (a trailing partial word counts as one
    word), as a list rather than a generator.
    """
    length = len(old)
    if len(new) != length:
        raise ValueError("diff buffers must have equal length")
    runs: List[Tuple[int, int]] = []
    if length == 0 or old == new:
        return runs
    wordbits = word * 8
    zero_word = b"\x00" * word
    chunk_bytes = _CHUNK_WORDS * word
    run_start = None  # absolute byte offset of the currently open run
    pos = 0
    while pos < length:
        hi = min(pos + chunk_bytes, length)
        chunk_old = old[pos:hi]
        chunk_new = new[pos:hi]
        if chunk_old == chunk_new:
            if run_start is not None:
                runs.append((run_start, pos - run_start))
                run_start = None
            pos = hi
            continue
        x = int.from_bytes(chunk_old, "little") ^ int.from_bytes(
            chunk_new, "little"
        )
        chunk_words = (hi - pos + word - 1) // word
        xb = x.to_bytes(chunk_words * word, "little")
        w = 0  # chunk words consumed out of x so far
        while x:
            gap = ((x & -x).bit_length() - 1) // wordbits
            start = w + gap  # first differing word at or after w
            if gap and run_start is not None:
                # Whole zero words before the next set bit: an equal
                # gap, closing the open run, skipped in one operation.
                runs.append((run_start, pos + w * word - run_start))
                run_start = None
            if run_start is None:
                run_start = pos + start * word
            end = _run_end(xb, start, chunk_words, word, zero_word)
            if end >= chunk_words:
                # The run reaches the chunk edge; it may continue into
                # the next chunk, so leave it open.
                break
            runs.append((run_start, pos + end * word - run_start))
            run_start = None
            x >>= (end - w) * wordbits
            w = end
        pos = hi
    if run_start is not None:
        runs.append((run_start, length - run_start))
    return runs


def diff_runs_dispatch(old: bytes, new: bytes, word: int = _WORD):
    """The active diff implementation: the big-int kernel when the fast
    path is enabled, the reference word-at-a-time loop otherwise."""
    if repro.fastpath.enabled():
        return diff_runs_fast(old, new, word)
    from repro.vista.v2_mirror_diff import diff_runs

    return list(diff_runs(old, new, word))
