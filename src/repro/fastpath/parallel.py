"""Process-pool fan-out for independent measurement tasks.

A thin wrapper over :class:`concurrent.futures.ProcessPoolExecutor`
that keeps the determinism contract explicit: tasks must be pure
(same task -> same result in any process), workers are top-level
picklable callables, and results come back in task order, so merging
is deterministic no matter how the pool interleaved the work.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence, TypeVar

Task = TypeVar("Task")
Result = TypeVar("Result")


def default_jobs() -> int:
    """A sensible ``--jobs`` default for "use the machine": the CPU
    count the scheduler will actually give us, when knowable."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_tasks(
    worker: Callable[[Task], Result],
    tasks: Sequence[Task],
    jobs: int,
) -> List[Result]:
    """Run ``worker`` over ``tasks``, ``jobs`` processes wide.

    Results are returned in task order. ``jobs <= 1`` (or a single
    task) runs inline — same code path the sequential runner uses, so
    ``--jobs 1`` is exactly the sequential runner.
    """
    if jobs <= 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        return list(pool.map(worker, tasks, chunksize=1))
