"""Deterministic parallel execution of the sharded failover timeline.

The shard cluster's event population decomposes almost perfectly: the
pairs never talk to each other. Every event in the sequential run —
heartbeat chains, redo traffic, router attempts, the crash and its
takeover — belongs to exactly one shard, plus one shared stream of
pre-scheduled sampler ticks. Cross-shard state exists (the shard map,
the cluster-wide membership view), but it is only ever *mutated* from
the owning shard's events: a failover bumps that shard's map entry and
evicts that shard's primary from the view, and the router consults only
the routed shard's entry/epoch. Those router-boundary interactions are
therefore the synchronization rule, not a synchronization *cost*: a
plan is parallelizable exactly when its boundary mutations stay
confined to their owning domain. Since the router refreshes shard-map
entries *per entry* on a redirect (one shard's redirect never
refreshes another shard's stale entry), every failover schedule with
distinct crashed shards satisfies the rule — multi-crash plans
included. The decomposition boundary is the full schedule; see
:func:`plan_supports_parallel` for the residual (degenerate) cases
that still fall back to the sequential executor.

Execution model:

* :class:`TimelinePlan` is the recorded schedule — a frozen, picklable
  description of the cluster geometry, the submission stream and the
  crash plan. Both executors consume the same plan, and the sequential
  one performs the construction and scheduling steps in exactly the
  order the original experiment code did.
* ``_run_domain`` replays the plan restricted to one shard on its own
  :class:`~repro.sim.engine.Simulator` (usually in its own process):
  the cluster is built with ``active_shards={k}`` — dormant shards
  keep their map rows and membership seats so every global data
  structure is byte-identical — and only shard ``k``'s submissions and
  crashes are scheduled. A :class:`RecordingQueue` logs every push and
  an ``on_event`` hook logs, for every fired event, which pushes,
  trace events and causal-trace ids it produced.
* ``_merge`` then re-runs the *global* event loop symbolically: it
  rebuilds the sequential queue's push order (domain setup pushes in
  shard order, one shared tick stream, submissions and crashes in plan
  order), pops by ``(time, seq)``, and for each popped event splices in
  the owning domain's recorded trace slice and pushes its recorded
  children. Causal-trace ids are renumbered in global firing order —
  the order the sequential run allocated them in — and the per-tick
  ``series.sample`` rows are re-derived from the domain samplers'
  recordings (queue depths sum after removing the ``N-1`` duplicated
  tick streams; wheel occupancy is the union of the domains' pending
  firing times; router counters sum exactly).

The result — trace event list, sampled series frame, router totals —
is **byte-identical** to the sequential run at any ``--shard-jobs N``:
every consumer downstream (timeline reports, audits, SLO accounting,
golden grid diffs) sees outputs indistinguishable from one simulator
having run the whole cluster.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import repro.fastpath as _fastpath
from repro.fastpath.parallel import run_tasks
from repro.obs.observer import Observer
from repro.obs.series import (
    SAMPLE_EVENT,
    SeriesFrame,
    TimeSeriesSampler,
    router_probes,
    sim_probes,
)
from repro.obs.trace import TraceEvent
from repro.shard.cluster import ShardedCluster
from repro.shard.router import Router
from repro.shard.workload import ShardedWorkload
from repro.sim.events import SHAPE_SHARED, default_event_queue
from repro.vista.api import EngineConfig

#: Trace attrs carrying causal-trace ids that the merge renumbers.
#: ``commit_trace_id`` (the resume instant's link into the first
#: post-failover commit tree) references an id allocated in the same
#: domain's fired events, so the per-domain id map always covers it.
_ID_ATTRS = ("trace_id", "span_id", "parent_id", "commit_trace_id")

_TICK = 0
_EVENT = 1


@dataclass(frozen=True)
class TimelinePlan:
    """One recorded shard-cluster schedule, replayable by either
    executor. All times in simulated microseconds; everything here is
    plain data, picklable across the process pool."""

    num_shards: int
    mode: str
    version: str
    db_bytes_per_shard: int
    log_bytes: int
    heartbeat_interval_us: float
    heartbeat_timeout_us: float
    restore_bytes_per_us: float
    workload: str
    seed: int
    max_attempts: int
    sample_interval_us: float
    sample_until_us: float
    horizon_us: float
    #: ``(at_us, key)`` per submission, in submission order.
    submissions: Tuple[Tuple[float, int], ...]
    #: ``(shard_id, at_us)`` per scheduled primary crash, in order.
    crashes: Tuple[Tuple[int, float], ...]


@dataclass
class Outcome:
    """What an execution produced — everything the timeline derivation
    consumes, identical across executors."""

    events: List[TraceEvent]
    frame: SeriesFrame
    routed: int
    completed: int
    dropped: int
    takeover_downtime_us: Dict[int, float]


def plan_supports_parallel(plan: TimelinePlan) -> bool:
    """Whether the plan's router-boundary interactions decompose.

    The per-shard domains are exact when every cross-shard mutation is
    confined to its owning domain. The router refreshes its shard-map
    snapshot *per entry* on a redirect, so one shard's epoch bump can
    never suppress (or trigger) another shard's redirect — each
    shard's routing behaviour is a function of its own view-change
    history alone, and the merge replays any number of crash/takeover
    streams by ``(time, seq)``. Every failover schedule therefore
    decomposes, with two degenerate exceptions that run sequentially:

    * fewer than two shards — nothing to decompose;
    * a shard crashed more than once, or a crash names a shard outside
      the map — the pair model has a single backup, so the cluster
      (sequential or parallel) cannot replay a second failover of the
      same shard; reject rather than guess.
    """
    if plan.num_shards < 2:
        return False
    crashed = [shard_id for shard_id, _ in plan.crashes]
    if len(set(crashed)) != len(crashed):
        return False
    if any(s < 0 or s >= plan.num_shards for s in crashed):
        return False
    return True


class _MembershipReplay:
    """Replays the cluster-wide view's evolution in global merge order.

    ``Membership.fail`` is the one cross-shard mutation a failover
    performs, and it is purely observational: it evicts the crashed
    primary from the shared view and emits one ``view.change`` trace
    event (promotion is deterministic — most senior survivor by
    original join order). Each domain only sees its *own* crashes, so
    its local ``view_id``/member list lag the global sequence when
    several shards fail; this replay rewrites each domain's
    ``view.change`` attrs to what the single sequential view emitted
    at that point in the global order.
    """

    def __init__(self, initial: TraceEvent, num_domains: int) -> None:
        self.all_members: List[str] = list(initial.attrs["members"])
        self.view_id: int = int(initial.attrs["view_id"])
        self.primary: str = initial.attrs["primary"]
        self.failed: set = set()
        self._domain_members = [
            set(self.all_members) for _ in range(num_domains)
        ]

    def rewrite(self, domain: int, event: TraceEvent) -> TraceEvent:
        local = set(event.attrs["members"])
        gone = self._domain_members[domain] - local
        _require(
            len(gone) == 1 and local < self._domain_members[domain],
            "unsupported membership transition (not a single failure)",
        )
        self._domain_members[domain] = local
        name = gone.pop()
        self.failed.add(name)
        self.view_id += 1
        survivors = [m for m in self.all_members if m not in self.failed]
        if self.primary == name:
            _require(bool(survivors), "no surviving member to promote")
            self.primary = survivors[0]
        return replace(event, attrs={
            "view_id": self.view_id,
            "members": survivors,
            "primary": self.primary,
        })


class RecordingQueue:
    """Event-queue wrapper logging every push's firing time.

    Because the wrapped queue numbers events from zero and every push
    goes through here, ``event.seq`` *is* the index into ``pushes`` —
    the invariant the symbolic replay keys on (asserted on every push).
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.pushes: List[float] = []

    def push(self, time, action, name=""):
        event = self.inner.push(time, action, name)
        self.pushes.append(time)
        assert event.seq == len(self.pushes) - 1
        return event

    def pop(self):
        return self.inner.pop()

    def pop_until(self, until=None):
        return self.inner.pop_until(until)

    def peek_time(self):
        return self.inner.peek_time()

    def distinct_times(self):
        return self.inner.distinct_times()

    def pending_times(self):
        return self.inner.pending_times()

    def clear(self):
        return self.inner.clear()

    def __len__(self):
        return len(self.inner)

    def __bool__(self):
        return bool(self.inner)


class _DomainSampler(TimeSeriesSampler):
    """The experiment sampler, additionally recording the queue's
    distinct pending firing times at each tick — the raw material the
    merge needs to rebuild the global wheel-occupancy probe (a union,
    not a sum)."""

    def __init__(self, observer=None, component: str = "series") -> None:
        super().__init__(observer=observer, component=component)
        self.pending_per_tick: List[List[float]] = []

    def _tick(self) -> None:
        self.pending_per_tick.append(self._sim.queue.pending_times())
        super()._tick()


@dataclass
class DomainResult:
    """Everything one shard's domain run recorded, picklable."""

    shard_id: int
    push_times: List[float]
    #: phase name -> (pushes, trace events, ids allocated) so far.
    marks: Dict[str, Tuple[int, int, int]]
    #: (plan submission index, p0, p1, t0, t1, i0, i1) per own submission.
    submission_ranges: List[Tuple[int, int, int, int, int, int, int]]
    #: (plan crash index, p0, p1, t0, t1, i0, i1) per own crash.
    crash_ranges: List[Tuple[int, int, int, int, int, int, int]]
    #: (seq, time, p0, p1, t0, t1, i0, i1) per fired event, in firing order.
    fired: List[Tuple[int, float, int, int, int, int, int, int]]
    trace: List[TraceEvent]
    frame_names: List[str]
    frame_times: List[float]
    frame_values: Dict[str, List[float]]
    pending_per_tick: List[List[float]]
    routed: int
    completed: int
    dropped: int
    takeover_downtime_us: Dict[int, float]


# -- construction (shared by both executors) ---------------------------------


def _build(
    plan: TimelinePlan,
    observer: Observer,
    queue=None,
    active_shards=None,
    sampler_cls=TimeSeriesSampler,
    checkpoint=None,
):
    """Build cluster, workload, router and sampler from the plan — in
    exactly the order the sequential experiment performs them, so the
    push/trace/id streams line up between executors."""
    mark = checkpoint if checkpoint is not None else (lambda name: None)
    config = EngineConfig(
        db_bytes=plan.db_bytes_per_shard, log_bytes=plan.log_bytes
    )
    cluster = ShardedCluster(
        plan.num_shards,
        mode=plan.mode,
        version=plan.version,
        config=config,
        heartbeat_interval_us=plan.heartbeat_interval_us,
        heartbeat_timeout_us=plan.heartbeat_timeout_us,
        restore_bytes_per_us=plan.restore_bytes_per_us,
        observer=observer,
        active_shards=active_shards,
        queue=queue,
    )
    mark("ctor")
    workload = ShardedWorkload(
        plan.workload, plan.num_shards, plan.db_bytes_per_shard, seed=plan.seed
    )
    cluster.setup(workload)
    mark("setup")
    router = Router(
        cluster, workload, max_attempts=plan.max_attempts, observer=observer
    )
    mark("router")
    sampler = sampler_cls(observer=observer)
    sampler.add_probes(sim_probes(cluster.sim))
    sampler.add_probes(router_probes(
        router, scopes={f"shard.{i}": i for i in range(plan.num_shards)}
    ))
    sampler.attach(cluster.sim, plan.sample_interval_us, plan.sample_until_us)
    mark("attach")
    return cluster, workload, router, sampler


# -- the sequential reference executor ---------------------------------------


def _execute_sequential(plan: TimelinePlan, observer: Observer) -> Outcome:
    """Run the plan on one simulator — the reference the parallel
    merge is byte-compared against."""
    cluster, workload, router, sampler = _build(plan, observer)
    for at_us, key in plan.submissions:
        router.submit(key=key, at_us=at_us)
    for shard_id, at_us in plan.crashes:
        cluster.schedule_primary_crash(shard_id, at_us)
    cluster.run_until(plan.horizon_us)
    return Outcome(
        events=list(observer.recorder.events),
        frame=sampler.frame,
        routed=router.routed,
        completed=router.completed,
        dropped=router.dropped,
        takeover_downtime_us={
            shard_id: report.downtime_us
            for shard_id, report in cluster.takeovers.items()
        },
    )


# -- one shard's domain ------------------------------------------------------


def _run_domain(task) -> DomainResult:
    """Run the plan restricted to one shard on a private simulator.

    Top-level and pure so the process pool can ship it; the result
    carries every recording the symbolic merge consumes.
    """
    plan, shard_id = task
    observer = Observer()
    queue = RecordingQueue(default_event_queue(SHAPE_SHARED))
    recorder = observer.recorder
    marks: Dict[str, Tuple[int, int, int]] = {}

    def snapshot() -> Tuple[int, int, int]:
        return len(queue.pushes), len(recorder.events), observer._next_id

    def checkpoint(name: str) -> None:
        marks[name] = snapshot()

    cluster, workload, router, sampler = _build(
        plan,
        observer,
        queue=queue,
        active_shards={shard_id},
        sampler_cls=_DomainSampler,
        checkpoint=checkpoint,
    )
    shard_of = workload.partitioner.shard_of
    submission_ranges: List[Tuple[int, int, int, int, int, int, int]] = []
    for index, (at_us, key) in enumerate(plan.submissions):
        if shard_of(key) != shard_id:
            continue
        p0, t0, i0 = snapshot()
        router.submit(key=key, at_us=at_us)
        p1, t1, i1 = snapshot()
        submission_ranges.append((index, p0, p1, t0, t1, i0, i1))
    checkpoint("submissions")
    crash_ranges: List[Tuple[int, int, int, int, int, int, int]] = []
    for index, (crash_shard, at_us) in enumerate(plan.crashes):
        if crash_shard != shard_id:
            continue
        p0, t0, i0 = snapshot()
        cluster.schedule_primary_crash(crash_shard, at_us)
        p1, t1, i1 = snapshot()
        crash_ranges.append((index, p0, p1, t0, t1, i0, i1))
    checkpoint("crashes")

    fired: List[Tuple[int, float, int, int, int, int, int, int]] = []

    def on_event(event) -> None:
        p0, t0, i0 = snapshot()
        event.action()
        p1, t1, i1 = snapshot()
        fired.append((event.seq, event.time, p0, p1, t0, t1, i0, i1))

    cluster.sim.run(until=plan.horizon_us, on_event=on_event)

    frame = sampler.frame
    return DomainResult(
        shard_id=shard_id,
        push_times=queue.pushes,
        marks=marks,
        submission_ranges=submission_ranges,
        crash_ranges=crash_ranges,
        fired=fired,
        trace=list(recorder.events),
        frame_names=frame.names,
        frame_times=frame.times_us,
        frame_values={name: frame.values(name) for name in frame.names},
        pending_per_tick=sampler.pending_per_tick,
        routed=router.routed,
        completed=router.completed,
        dropped=router.dropped,
        takeover_downtime_us={
            sid: report.downtime_us
            for sid, report in cluster.takeovers.items()
        },
    )


# -- the deterministic merge -------------------------------------------------


class _MergeError(AssertionError):
    pass


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise _MergeError(message)


def _merge(plan: TimelinePlan, domains: List[DomainResult]) -> Outcome:
    """Symbolically replay the global event loop from the domains'
    recordings; see the module docstring for the argument."""
    n = plan.num_shards
    by_shard = {d.shard_id: d for d in domains}
    domains = [by_shard[shard_id] for shard_id in range(n)]

    # Phase ranges. marks[name] = cumulative (pushes, traces, ids).
    def phase(d: DomainResult, name: str, prev: str) -> Tuple[int, ...]:
        p0, t0, i0 = d.marks[prev] if prev else (0, 0, 0)
        p1, t1, i1 = d.marks[name]
        return p0, p1, t0, t1, i0, i1

    # The shared tick stream: every domain pre-schedules the identical
    # tick times; the global queue holds them once.
    tick_slices = [phase(d, "attach", "router") for d in domains]
    tick_times = domains[0].push_times[tick_slices[0][0]:tick_slices[0][1]]
    ticks = len(tick_times)
    fired_tick_times = [t for t in tick_times if t <= plan.horizon_us]
    fired_ticks = len(fired_tick_times)
    for d, s in zip(domains, tick_slices):
        _require(
            d.push_times[s[0]:s[1]] == tick_times,
            "domains disagree on the sampler tick schedule",
        )
        _require(s[3] == s[2] and s[5] == s[4], "sampler attach emitted")
        _require(d.frame_times == fired_tick_times, "domain missed a tick")
        _require(
            len(d.pending_per_tick) == fired_ticks, "pending recording gap"
        )
    for d in domains:
        s = phase(d, "router", "setup")
        _require(
            s[1] == s[0] and s[3] == s[2] and s[5] == s[4],
            "router construction emitted events",
        )

    # Causal-trace ids are renumbered in global allocation order; the
    # per-domain maps translate each domain's local ids.
    id_maps: List[Dict[int, int]] = [{} for _ in range(n)]
    next_id = [0]

    def consume_ids(d: int, i0: int, i1: int) -> None:
        id_map = id_maps[d]
        for local in range(i0 + 1, i1 + 1):
            next_id[0] += 1
            id_map[local] = next_id[0]

    def remapped(d: int, lo: int, hi: int) -> List[TraceEvent]:
        out = []
        id_map = id_maps[d]
        for event in domains[d].trace[lo:hi]:
            attrs = event.attrs
            if attrs and any(key in attrs for key in _ID_ATTRS):
                new_attrs = dict(attrs)
                for key in _ID_ATTRS:
                    if key in new_attrs:
                        new_attrs[key] = id_map[new_attrs[key]]
                event = replace(event, attrs=new_attrs)
            out.append(event)
        return out

    events: List[TraceEvent] = []

    # Setup-phase trace: per-pair constructor slices in shard order.
    # Each domain's constructor slice ends with the (identical)
    # cluster-wide membership view — emitted once globally.
    ctor_slices = [phase(d, "ctor", "") for d in domains]
    membership_views = []
    for d, s in zip(domains, ctor_slices):
        _require(s[3] > s[2], "constructor recorded no trace events")
        tail = d.trace[s[3] - 1]
        _require(
            tail.component == "membership" and tail.name == "view.change",
            f"unexpected constructor tail event {tail.component}.{tail.name}",
        )
        membership_views.append(tail)
    _require(
        all(view == membership_views[0] for view in membership_views),
        "domains disagree on the cluster-wide membership view",
    )
    for d in range(n):
        s = ctor_slices[d]
        consume_ids(d, s[4], s[5])
        events.extend(remapped(d, s[2], s[3] - 1))
    events.append(membership_views[0])
    membership = _MembershipReplay(membership_views[0], n)
    for d in range(n):
        s = phase(domains[d], "setup", "ctor")
        consume_ids(d, s[4], s[5])
        events.extend(remapped(d, s[2], s[3]))

    # The global push template, in the sequential run's push order:
    # per-domain constructor+setup pushes (shard order), one tick
    # stream, submissions in plan order, crashes in plan order. gseq
    # reproduces the sequential queue's sequence numbers symbolically.
    heap: List[Tuple[float, int, int, int, int]] = []
    gseq = [0]

    def template_push(time: float, kind: int, d: int, payload: int) -> None:
        gseq[0] += 1
        heapq.heappush(heap, (time, gseq[0], kind, d, payload))

    # Sequential push order: every pair's constructor pushes (shard
    # order), then every shard's setup pushes (shard order) — the two
    # loops must not interleave per domain.
    for phase_name, prev in (("ctor", ""), ("setup", "ctor")):
        for d in range(n):
            s = phase(domains[d], phase_name, prev)
            for local in range(s[0], s[1]):
                template_push(domains[d].push_times[local], _EVENT, d, local)
    for j, time in enumerate(tick_times):
        template_push(time, _TICK, -1, j)

    submission_owner: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
    crash_owner: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
    for d in range(n):
        for record in domains[d].submission_ranges:
            submission_owner[record[0]] = (d, record[1:])
        for record in domains[d].crash_ranges:
            crash_owner[record[0]] = (d, record[1:])
    _require(
        sorted(submission_owner) == list(range(len(plan.submissions))),
        "submissions not partitioned exactly across domains",
    )
    _require(
        sorted(crash_owner) == list(range(len(plan.crashes))),
        "crashes not partitioned exactly across domains",
    )
    for index in range(len(plan.submissions)):
        d, (p0, p1, t0, t1, i0, i1) = submission_owner[index]
        consume_ids(d, i0, i1)
        events.extend(remapped(d, t0, t1))
        for local in range(p0, p1):
            template_push(domains[d].push_times[local], _EVENT, d, local)
    for index in range(len(plan.crashes)):
        d, (p0, p1, t0, t1, i0, i1) = crash_owner[index]
        _require(t1 == t0 and i1 == i0, "crash scheduling emitted events")
        for local in range(p0, p1):
            template_push(domains[d].push_times[local], _EVENT, d, local)

    # Index each domain's firings by local sequence number; the
    # per-tick local sequences are the attach-phase push indices.
    fired_by_seq: List[Dict[int, Tuple]] = [
        {record[0]: record for record in d.fired} for d in domains
    ]
    tick_base = [s[0] for s in tick_slices]

    # The probe set, in the sampler's registration order.
    frame_names = domains[0].frame_names
    _require(
        all(d.frame_names == frame_names for d in domains),
        "domains disagree on probe registration order",
    )

    def merged_sample(j: int, ts_us: float) -> Dict[str, float]:
        # Each domain's queue holds its own copy of the not-yet-fired
        # tick stream; the global queue holds one.
        duplicated_ticks = (n - 1) * (ticks - 1 - j)
        sample: Dict[str, float] = {}
        for name in frame_names:
            if name.endswith("wheel_occupancy"):
                union = set()
                for d in domains:
                    union.update(d.pending_per_tick[j])
                value = float(len(union))
            else:
                value = float(sum(d.frame_values[name][j] for d in domains))
                if name.endswith("queue_depth"):
                    value -= duplicated_ticks
            sample[name] = value
        return sample

    frame = SeriesFrame()
    horizon = plan.horizon_us
    while heap:
        time, _, kind, d, payload = heapq.heappop(heap)
        if time > horizon:
            break
        if kind == _TICK:
            j = payload
            for dd in range(n):
                record = fired_by_seq[dd].get(tick_base[dd] + j)
                _require(record is not None, f"domain {dd} skipped tick {j}")
                _require(
                    record[2] == record[3] and record[6] == record[7],
                    "a sampler tick scheduled work",
                )
                _require(
                    record[5] - record[4] == 1
                    and domains[dd].trace[record[4]].name == SAMPLE_EVENT,
                    "a sampler tick emitted non-sample events",
                )
            sample = merged_sample(j, time)
            events.append(TraceEvent(
                ts_us=time, component="series", name=SAMPLE_EVENT,
                attrs=sample,
            ))
            frame.append(time, sample)
            continue
        record = fired_by_seq[d].get(payload)
        if record is None:
            continue  # lazily cancelled; the sequential pop skips it too
        _require(record[1] == time, "recorded firing time drifted")
        consume_ids(d, record[6], record[7])
        for event in remapped(d, record[4], record[5]):
            if event.component == "membership" and event.name == "view.change":
                event = membership.rewrite(d, event)
            events.append(event)
        for child in range(record[2], record[3]):
            template_push(domains[d].push_times[child], _EVENT, d, child)

    # Conservation: every domain trace event was spliced exactly once —
    # minus the N-1 duplicated membership views and per-tick samples.
    expected = sum(len(d.trace) for d in domains) - (n - 1) * (fired_ticks + 1)
    _require(
        len(events) == expected,
        f"merged {len(events)} trace events, expected {expected}",
    )

    takeovers: Dict[int, float] = {}
    for d in domains:
        takeovers.update(d.takeover_downtime_us)
    return Outcome(
        events=events,
        frame=frame,
        routed=sum(d.routed for d in domains),
        completed=sum(d.completed for d in domains),
        dropped=sum(d.dropped for d in domains),
        takeover_downtime_us=takeovers,
    )


# -- entry points ------------------------------------------------------------


def execute_decomposed(plan: TimelinePlan, jobs: int = 1) -> Outcome:
    """Run the per-shard decomposition and merge, ``jobs`` processes
    wide (``jobs <= 1`` runs the domains inline — the path the
    property suite drives, deterministic and pool-free)."""
    results = run_tasks(
        _run_domain,
        [(plan, shard_id) for shard_id in range(plan.num_shards)],
        jobs,
    )
    return _merge(plan, results)


def execute(
    plan: TimelinePlan, jobs: int = 1, observer: Optional[Observer] = None
) -> Outcome:
    """Execute the plan, parallel when asked *and* safe.

    ``jobs <= 1``, a disabled fast path, or a plan whose boundary
    interactions do not decompose all select the sequential reference
    executor; outputs are byte-identical either way. The caller's
    observer receives the merged trace in both modes (the sequential
    executor records into it directly).
    """
    if observer is None:
        observer = Observer()
    if jobs <= 1 or not _fastpath.enabled() or not plan_supports_parallel(plan):
        return _execute_sequential(plan, observer)
    outcome = execute_decomposed(plan, jobs=jobs)
    observer.recorder.events.extend(outcome.events)
    return outcome
