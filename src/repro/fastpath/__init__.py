"""The fast-path execution layer.

The paper's argument is about making a hot path fast; this package is
about making the *reproduction's* hot path fast without changing a
single measured number. Three mechanisms, all byte-identical to the
slow path by construction and by test:

* **Batched store pipeline** — the write-doubling and redo paths
  accumulate per-transaction store batches on the Memory Channel
  interface instead of simulating the CPU write buffers one store at a
  time; the batch drains through
  :meth:`~repro.hardware.writebuffer.WriteBufferModel.write_batch`
  at the next commit barrier (or statistics read), in original order,
  so packet formation is unchanged.
* **Replay cache** (:mod:`repro.fastpath.replay`) — the deterministic
  workloads repeat a small set of transaction shapes; a
  barrier-terminated store schedule is canonicalized modulo the write
  buffers' block geometry, and repeated schedules replay their packet
  sequence out of a cache instead of re-running the simulation loop.
* **Process-parallel experiment runner**
  (:mod:`repro.fastpath.parallel`) — ``repro-experiments --jobs N``
  fans the grid's independent measured cells over a process pool and
  merges results deterministically.

The global switch: fast path is **on** by default and disabled by the
``REPRO_FASTPATH=0`` environment variable, the ``--no-fastpath`` CLI
flag, or :func:`set_enabled`. Components with a live observer attached
fall back to the slow path automatically so that per-store gauges keep
their exact slow-path values.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_enabled = os.environ.get("REPRO_FASTPATH", "1") != "0"


def enabled() -> bool:
    """Is the fast-path execution layer globally enabled?"""
    return _enabled


def set_enabled(on: bool) -> bool:
    """Set the global fast-path switch; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    return previous


@contextmanager
def disabled():
    """Context manager: run a block with the fast path off (the
    ``--no-fastpath`` escape hatch, and the tool the equivalence tests
    use to drive both paths in one process)."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


@contextmanager
def forced():
    """Context manager: run a block with the fast path on."""
    previous = set_enabled(True)
    try:
        yield
    finally:
        set_enabled(previous)
