"""The per-transaction replay cache for Memory Channel packet formation.

Packet formation is a pure function: starting from empty write
buffers, a store schedule (an ordered list of ``(address, length)``
stores ended by a barrier) always drains into the same sequence of
packet sizes. Moreover the function only sees addresses *through the
block geometry*: renaming the 32-byte blocks consistently cannot
change which stores coalesce, which buffer is displaced (FIFO is
insertion-ordered, preserved by renaming) or how many bytes each
packet carries.

The deterministic workloads repeat a small set of transaction shapes,
so the same canonical schedule shows up thousands of times per run.
:class:`PacketReplayCache` canonicalizes a schedule — every touched
block is renamed to its order of first appearance, every store becomes
``(canonical block, lo, hi)`` — and memoizes the packet sequence the
write-buffer simulation produces for it. A hit replays the packets
into counters and traces without re-running the Python store loop.

Keys are exact, so a miss simply falls through to one real
simulation; the cache can never change a measured number, only skip
recomputing it. Equivalence is asserted by the Hypothesis property
suite (``tests/properties/test_fastpath_properties.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Tuple

from repro.hardware.writebuffer import writebuffer_model

#: One cached drain: (packet sizes in emission order, total bytes).
CacheEntry = Tuple[Tuple[int, ...], int]


class PacketReplayCache:
    """Memoizes barrier-terminated store schedules -> packet sequences.

    Args:
        max_entries: bound on distinct canonical schedules kept; the
            least-recently-inserted entry is evicted beyond it. The
            paper's workloads need a few thousand (transaction shapes
            times block alignments), so the default is comfortable.
    """

    def __init__(self, max_entries: int = 65536):
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    @staticmethod
    def canonical_key(
        ops: Iterable[Tuple[int, int]], num_buffers: int, block_bytes: int
    ) -> tuple:
        """The schedule's shape: per-block stores with blocks renamed
        to first-appearance order (addresses mod block geometry)."""
        seen: dict = {}
        parts: List[int] = [num_buffers, block_bytes]
        append = parts.append
        for address, length in ops:
            if length <= 0:
                continue
            end = address + length
            while address < end:
                block = address // block_bytes
                base = block * block_bytes
                lo = address - base
                hi = end - base
                if hi > block_bytes:
                    hi = block_bytes
                canonical = seen.get(block)
                if canonical is None:
                    canonical = len(seen)
                    seen[block] = canonical
                append(canonical)
                append(lo)
                append(hi)
                address = base + block_bytes
        return tuple(parts)

    def drain_sizes(
        self,
        ops: List[Tuple[int, int]],
        num_buffers: int,
        block_bytes: int,
    ) -> CacheEntry:
        """Packet sizes (and their byte total) that ``ops`` followed by
        a barrier drain into, starting from empty write buffers."""
        key = self.canonical_key(ops, num_buffers, block_bytes)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        sizes: List[int] = []
        model = writebuffer_model(num_buffers, block_bytes, on_packet=sizes.append)
        model.write_batch(ops)
        model.barrier()
        entry = (tuple(sizes), model.bytes_emitted)
        self._entries[key] = entry
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return entry


#: Process-wide cache shared by every Memory Channel interface. Cells
#: driven in the same process (or pool worker) warm it for each other.
GLOBAL_REPLAY_CACHE = PacketReplayCache()
