"""Instrumentation for the transaction engines.

The performance model (:mod:`repro.perf`) never times Python — it
converts *operation counts* measured here into simulated hardware time.
Two kinds of information are gathered:

* :class:`EngineCounters` — how many of each structural operation the
  engine performed (allocations, list manipulations, bytes copied or
  compared, ...).
* :class:`AccessProfile` — the memory-locality footprint: how many
  cache lines of which working set were touched randomly versus how
  many bytes were streamed sequentially. This is what makes the
  paper's locality arguments (Section 4.5) quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class AccessProfile:
    """Cache-relevant memory footprint, grouped by working set.

    A *working set* is a named region family (``db``, ``mirror``,
    ``log``, ``heap``) with a size; random touches are counted in
    cache lines, sequential streaming in bytes.
    """

    working_set_bytes: Dict[str, int] = field(default_factory=dict)
    random_lines: Dict[str, float] = field(default_factory=dict)
    sequential_bytes: Dict[str, float] = field(default_factory=dict)
    line_size: int = 64

    def declare(self, name: str, size_bytes: int) -> None:
        """Register a working set and its size."""
        self.working_set_bytes[name] = size_bytes

    def touch_random(self, name: str, offset: int, length: int) -> None:
        """Record a random-placement access spanning ``length`` bytes."""
        if length <= 0:
            return
        first = offset // self.line_size
        last = (offset + length - 1) // self.line_size
        self.random_lines[name] = self.random_lines.get(name, 0.0) + (
            last - first + 1
        )

    def touch_sequential(self, name: str, nbytes: int) -> None:
        """Record streaming access of ``nbytes`` (misses once per line)."""
        if nbytes <= 0:
            return
        self.sequential_bytes[name] = (
            self.sequential_bytes.get(name, 0.0) + nbytes
        )

    def reset(self) -> None:
        """Zero the footprint in place (declarations included; callers
        re-declare their working sets). In-place matters: observers and
        registry bridges hold references to this object and must keep
        seeing live counts after a post-warmup reset."""
        self.working_set_bytes.clear()
        self.random_lines.clear()
        self.sequential_bytes.clear()

    def merge(self, other: "AccessProfile") -> None:
        self.working_set_bytes.update(other.working_set_bytes)
        for name, lines in other.random_lines.items():
            self.random_lines[name] = self.random_lines.get(name, 0.0) + lines
        for name, nbytes in other.sequential_bytes.items():
            self.sequential_bytes[name] = (
                self.sequential_bytes.get(name, 0.0) + nbytes
            )

    def scaled(self, factor: float) -> "AccessProfile":
        scaled = AccessProfile(line_size=self.line_size)
        scaled.working_set_bytes = dict(self.working_set_bytes)
        scaled.random_lines = {
            name: lines * factor for name, lines in self.random_lines.items()
        }
        scaled.sequential_bytes = {
            name: nbytes * factor
            for name, nbytes in self.sequential_bytes.items()
        }
        return scaled

    def snapshot_into(self, registry, prefix: str) -> None:
        """Fold this profile into an obs registry under ``prefix``.

        Working-set sizes and the per-set random/sequential footprints
        become gauges (``<prefix>.random_lines.db``, ...), so locality
        numbers live in the same namespace as every other metric.
        Idempotent: re-snapshotting overwrites, never double-counts.
        """
        for name, size in self.working_set_bytes.items():
            registry.gauge(f"{prefix}.working_set_bytes.{name}").set(size)
        for name, lines in self.random_lines.items():
            registry.gauge(f"{prefix}.random_lines.{name}").set(lines)
        for name, nbytes in self.sequential_bytes.items():
            registry.gauge(f"{prefix}.sequential_bytes.{name}").set(nbytes)


@dataclass
class EngineCounters:
    """Operation counts accumulated by an engine over a run."""

    transactions: int = 0
    commits: int = 0
    aborts: int = 0
    set_ranges: int = 0
    set_range_bytes: int = 0
    db_writes: int = 0
    db_bytes_written: int = 0
    undo_bytes_copied: int = 0
    bytes_compared: int = 0
    mallocs: int = 0
    frees: int = 0
    list_ops: int = 0
    walk_steps: int = 0
    bump_allocs: int = 0
    array_pushes: int = 0
    rollback_bytes: int = 0
    recoveries: int = 0

    def reset(self) -> None:
        """Zero every field in place — same end state as assigning a
        fresh EngineCounters, but anyone holding a reference (an obs
        registry bridge, a test, a dashboard) keeps seeing live counts
        instead of a dead snapshot."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def merge(self, other: "EngineCounters") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def per_transaction(self) -> Dict[str, float]:
        """Averages per committed-or-aborted transaction."""
        txns = max(1, self.transactions)
        return {
            name: getattr(self, name) / txns
            for name in self.__dataclass_fields__
            if name != "transactions"
        }

    def snapshot_into(self, registry, prefix: str) -> None:
        """Fold these operation counts into an obs registry under
        ``prefix`` (one counter per field, e.g. ``<prefix>.commits``).

        This is the bridge that merges the engines' own bookkeeping
        with the observability namespace: a report reads
        ``shard.0.cluster.takeover.engine.rollback_bytes`` next to
        ``shard.0.router.retries`` from one registry. Uses absolute
        ``set`` semantics, so re-snapshotting the same counters is
        idempotent rather than double-counting.
        """
        for name in self.__dataclass_fields__:
            registry.counter(f"{prefix}.{name}").set(getattr(self, name))
