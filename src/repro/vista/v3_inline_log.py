"""Version 3 — improved logging (Section 4.4).

Pre-images are kept *inline* in the undo log: a ``set_range``
allocates a log record by simply advancing a pointer and writes the
range coordinates followed by the range's current data. Database
writes remain in-place; commit de-allocates the records by moving the
pointer back.

The write traffic equals Version 1's, but every log write is
*contiguous*: accesses stay localized to the database and the (small,
recycled, cache-hot) log instead of wandering over a database-sized
mirror. Locally this means better cache behaviour (Table 3); through
the Memory Channel it means one unbroken store stream that coalesces
into full 32-byte packets and therefore rides at the full 80 MB/s
(Tables 4-5, Figures 2-3).

Log format. Each record carries an **epoch-validated header** —
``(db_offset: u32, length: u32, epoch: u32)`` — where the epoch is the
commit sequence number of the transaction that wrote it. Committing
increments the commit sequence, which invalidates every live record in
one 8-byte control write; the allocation pointer itself never needs to
be written through, because recovery re-derives the log's extent by
scanning from the base and stopping at the first record whose epoch is
not current (or whose header is out of bounds). Stale records beyond
the live region always carry older epochs, so the scan terminates
correctly; FIFO delivery on the Memory Channel guarantees the backup
has every record (header before data before the in-place database
writes it covers).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.errors import AllocationError
from repro.memory.region import WriteCategory
from repro.vista.api import EngineConfig, TransactionEngine

_U64 = struct.Struct("<Q")
_HEADER = struct.Struct("<III")  # db offset, length, epoch

HEADER_BYTES = _HEADER.size
_COMMIT_SEQ = 8
_EPOCH_MASK = 0xFFFFFFFF


class InlineLogEngine(TransactionEngine):
    """Version 3: inline undo log allocated by a bump pointer."""

    VERSION = "v3"
    TITLE = "Version 3 (Improved Log)"
    REPLICATED = ("db", "control", "ulog")
    LOCAL = ()

    @classmethod
    def _extra_region_specs(cls, config: EngineConfig) -> Dict[str, int]:
        return {"ulog": config.log_bytes}

    def _setup(self, fresh: bool) -> None:
        self.log_region = self.regions["ulog"]
        # The bump pointer is volatile CPU state: recovery re-derives it
        # by scanning, so it is never written through (one reason this
        # version's metadata traffic stays low).
        self._log_pointer = 0
        # The log empties at every commit, so only a small hot prefix
        # is ever live — that is the locality advantage.
        self.profile.declare("ulog", self.config.log_hot_bytes)
        if fresh:
            self._write_control(_COMMIT_SEQ, 0)

    def _write_control(self, offset: int, value: int) -> None:
        self.control.write(offset, _U64.pack(value), WriteCategory.META)

    def _read_control(self, offset: int) -> int:
        return _U64.unpack(self.control.read(offset, 8))[0]

    @property
    def commit_sequence(self) -> int:
        return self._read_control(_COMMIT_SEQ)

    @property
    def log_pointer(self) -> int:
        return self._log_pointer

    def _epoch(self) -> int:
        """The epoch stamped into records of the current transaction."""
        return self.commit_sequence & _EPOCH_MASK

    # -- hooks ---------------------------------------------------------------

    def _on_set_range(self, offset: int, length: int) -> None:
        record = self._log_pointer
        if record + HEADER_BYTES + length > self.log_region.size:
            raise AllocationError(
                f"undo log full: need {HEADER_BYTES + length} bytes at "
                f"{record} of {self.log_region.size}"
            )
        self.counters.bump_allocs += 1
        self.log_region.write(
            record,
            _HEADER.pack(offset, length, self._epoch()),
            WriteCategory.META,
        )
        self.log_region.write(
            record + HEADER_BYTES, self.db.read(offset, length), WriteCategory.UNDO
        )
        self._log_pointer = record + HEADER_BYTES + length
        self.counters.undo_bytes_copied += length
        self.profile.touch_random("ulog", record, HEADER_BYTES + length)

    def _on_commit(self) -> None:
        # One control write both commits the transaction and invalidates
        # every live record (their epoch is now stale).
        self._write_control(_COMMIT_SEQ, self.commit_sequence + 1)
        self._log_pointer = 0

    def _parse_log(self) -> List[Tuple[int, int, int]]:
        """Scan live records from the base: (db offset, length, payload
        offset) in append order. A record is live while its epoch
        matches the current commit sequence and its header is sane."""
        entries = []
        epoch = self._epoch()
        cursor = 0
        limit = self.log_region.size
        while cursor + HEADER_BYTES <= limit:
            offset, length, record_epoch = _HEADER.unpack(
                self.log_region.read(cursor, HEADER_BYTES)
            )
            if record_epoch != epoch:
                break
            if length == 0 or cursor + HEADER_BYTES + length > limit:
                break
            if offset + length > self.db.size:
                break
            entries.append((offset, length, cursor + HEADER_BYTES))
            cursor += HEADER_BYTES + length
        return entries

    def _rollback(self) -> None:
        entries = self._parse_log()
        # Reverse order: the oldest pre-image of an overlapping range
        # must be re-installed last.
        for offset, length, payload in reversed(entries):
            pre_image = self.log_region.read(payload, length)
            self.db.write(offset, pre_image, WriteCategory.MODIFIED)
            self.counters.rollback_bytes += length
        # Invalidate the rolled-back records and reset the pointer.
        self._write_control(_COMMIT_SEQ, self.commit_sequence + 1)
        self._log_pointer = 0

    def _on_abort(self) -> None:
        self._rollback()

    def _on_recover(self) -> None:
        self._rollback()
