"""The transaction API and the engine base class.

The API is the one introduced by RVM and implemented by Vista
(Section 2.1): the transaction data is mapped into the server's
address space and manipulated with::

    begin_transaction()
    set_range(offset, length)   # declare a region the txn may modify
    ...in-place writes...
    commit_transaction()  /  abort_transaction()

Concurrency control is out of scope (the paper assumes a separate
layer), so an engine runs one transaction at a time; the SMP
experiments run independent engines on disjoint data, exactly as the
paper does (Section 8).

Commit is **1-safe** in replicated configurations: the call returns as
soon as the commit completes on the primary (Section 2.1).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    NoTransactionError,
    OutOfBoundsError,
    RangeNotDeclaredError,
    TransactionAlreadyActiveError,
)
from repro.memory.mapping import AddressSpace
from repro.memory.region import MemoryRegion, WriteCategory
from repro.memory.rio import RioMemory
from repro.vista.stats import AccessProfile, EngineCounters

MB = 1024 * 1024

#: Locality hints for set_range instrumentation (the cache model needs
#: to know whether a range is a random probe into the database or a
#: sequential append such as the Debit-Credit audit trail).
HINT_RANDOM = "random"
HINT_SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class EngineConfig:
    """Sizing and modelling parameters shared by all engine versions.

    Attributes:
        db_bytes: bytes actually allocated for the database region.
        nominal_db_bytes: database size the *cache and traffic models*
            assume; defaults to ``db_bytes``. Decoupling the two lets
            Table 8's 1 GB configuration run without allocating 1 GB —
            per-transaction operation counts do not depend on the
            allocated size, only offsets do.
        log_bytes: size of the undo-log/heap region (V0's heap, V3's
            inline log).
        range_records: capacity of V1/V2's set_range coordinate array.
        log_hot_bytes: the recycled hot prefix of V3's log, used as its
            cache working-set size (the log empties at every commit, so
            only this much is ever live).
        enforce_ranges: raise if a write is not covered by a declared
            set_range (RVM leaves this undefined; we default to strict).
        line_size: cache-line size for footprint accounting.
    """

    db_bytes: int = 8 * MB
    nominal_db_bytes: Optional[int] = None
    log_bytes: int = 2 * MB
    range_records: int = 4096
    log_hot_bytes: int = 64 * 1024
    enforce_ranges: bool = True
    line_size: int = 64

    @property
    def nominal(self) -> int:
        return self.nominal_db_bytes if self.nominal_db_bytes else self.db_bytes

    def with_nominal(self, nominal_db_bytes: int) -> "EngineConfig":
        return replace(self, nominal_db_bytes=nominal_db_bytes)


class TransactionEngine(abc.ABC):
    """Base class for the four engine versions.

    Subclasses define :attr:`VERSION`, :meth:`region_specs`, and the
    ``_on_*`` hooks. All durable state lives in the regions, never in
    Python attributes, so that a crash can be simulated by rebuilding
    the engine over the same regions (``fresh=False``) and running
    :meth:`recover`.
    """

    VERSION: str = "base"
    TITLE: str = "base"

    #: regions that a passive backup must receive by write-through
    REPLICATED: Tuple[str, ...] = ()
    #: regions kept primary-local in the optimized passive scheme
    LOCAL: Tuple[str, ...] = ()

    def __init__(
        self,
        regions: Dict[str, MemoryRegion],
        config: EngineConfig,
        fresh: bool = True,
    ):
        self.config = config
        self.regions = regions
        self.db = regions["db"]
        self.control = regions["control"]
        self.counters = EngineCounters()
        self.profile = AccessProfile(line_size=config.line_size)
        self.profile.declare("db", config.nominal)
        self._active = False
        self._ranges: List[Tuple[int, int]] = []
        self._setup(fresh)

    # -- construction -----------------------------------------------------

    @classmethod
    def region_specs(cls, config: EngineConfig) -> Dict[str, int]:
        """Mapping of region name -> size for this version."""
        specs = {"db": config.db_bytes, "control": 4096}
        specs.update(cls._extra_region_specs(config))
        return specs

    @classmethod
    def _extra_region_specs(cls, config: EngineConfig) -> Dict[str, int]:
        return {}

    @classmethod
    def create(
        cls,
        rio: RioMemory,
        config: Optional[EngineConfig] = None,
        space: Optional[AddressSpace] = None,
        fresh: bool = True,
    ) -> "TransactionEngine":
        """Build the engine's regions in ``rio`` and construct it.

        When the regions already exist in ``rio`` (a reboot or a
        backup node), they are reused; pass ``fresh=False`` to attach
        without reinitializing so :meth:`recover` can run.
        """
        if config is None:
            config = EngineConfig()
        regions = {}
        for name, size in cls.region_specs(config).items():
            if rio.has_region(name):
                regions[name] = rio.get_region(name)
            else:
                region = rio.create_region(name, size)
                if space is not None:
                    space.place(region)
                regions[name] = region
        return cls(regions, config, fresh=fresh)

    @abc.abstractmethod
    def _setup(self, fresh: bool) -> None:
        """Initialize (or attach to) the version-specific structures."""

    # -- setup-phase loading --------------------------------------------------

    def initialize_data(self, offset: int, data: bytes) -> None:
        """Load initial database contents outside any transaction.

        Not counted as traffic or engine work: the paper's initial
        image reaches the backup when the mappings are created, not
        through the transaction stream. Mirror-based versions also
        refresh their mirror so both copies start identical.
        """
        if self._active:
            raise TransactionAlreadyActiveError(
                "initialize_data inside a transaction"
            )
        self.db.poke(offset, data)
        self._on_initialize(offset, data)

    def _on_initialize(self, offset: int, data: bytes) -> None:
        """Hook for versions that keep a second copy of the database."""

    # -- the RVM API -------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._active

    def begin_transaction(self) -> None:
        """Start a transaction."""
        if self._active:
            raise TransactionAlreadyActiveError(
                f"{self.VERSION}: begin_transaction inside a transaction"
            )
        self._active = True
        self._ranges = []
        self.counters.transactions += 1
        self._on_begin()

    def set_range(
        self, offset: int, length: int, hint: str = HINT_RANDOM
    ) -> None:
        """Declare that the transaction may modify
        ``[offset, offset + length)`` of the database."""
        self._require_active("set_range")
        if offset < 0 or length <= 0 or offset + length > self.db.size:
            raise OutOfBoundsError(self.db.name, offset, length, self.db.size)
        self._ranges.append((offset, offset + length))
        self.counters.set_ranges += 1
        self.counters.set_range_bytes += length
        if hint == HINT_SEQUENTIAL:
            self.profile.touch_sequential("db", length)
        else:
            self.profile.touch_random("db", offset, length)
        self._on_set_range(offset, length)

    def write(self, offset: int, data: bytes) -> None:
        """In-place database write (must be covered by a set_range)."""
        self._require_active("write")
        length = len(data)
        if self.config.enforce_ranges and not self._covered(offset, length):
            raise RangeNotDeclaredError(offset, length)
        self.db.write(offset, data, WriteCategory.MODIFIED)
        self.counters.db_writes += 1
        self.counters.db_bytes_written += length

    def read(self, offset: int, length: int) -> bytes:
        """Read database bytes (allowed outside transactions too)."""
        return self.db.read(offset, length)

    def commit_transaction(self) -> None:
        """Make the transaction's effects durable."""
        self._require_active("commit_transaction")
        self._on_commit()
        self._active = False
        self._ranges = []
        self.counters.commits += 1

    def abort_transaction(self) -> None:
        """Undo the transaction's effects."""
        self._require_active("abort_transaction")
        self._on_abort()
        self._active = False
        self._ranges = []
        self.counters.aborts += 1

    def recover(self) -> None:
        """Crash recovery: restore the database to the last committed
        state using only the persistent structures in the regions."""
        self._on_recover()
        self._active = False
        self._ranges = []
        self.counters.recoveries += 1

    # -- hooks ---------------------------------------------------------------

    def _on_begin(self) -> None:
        """Version-specific begin processing (optional)."""

    @abc.abstractmethod
    def _on_set_range(self, offset: int, length: int) -> None:
        ...

    @abc.abstractmethod
    def _on_commit(self) -> None:
        ...

    @abc.abstractmethod
    def _on_abort(self) -> None:
        ...

    @abc.abstractmethod
    def _on_recover(self) -> None:
        ...

    # -- helpers ---------------------------------------------------------------

    def _require_active(self, operation: str) -> None:
        if not self._active:
            raise NoTransactionError(
                f"{self.VERSION}: {operation} outside a transaction"
            )

    def _covered(self, offset: int, length: int) -> bool:
        end = offset + length
        return any(lo <= offset and end <= hi for lo, hi in self._ranges)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(db={self.db.size}B, "
            f"active={self._active})"
        )
