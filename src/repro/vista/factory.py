"""Engine construction by version name."""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.errors import ConfigurationError
from repro.memory.mapping import AddressSpace
from repro.memory.rio import RioMemory
from repro.vista.api import EngineConfig, TransactionEngine
from repro.vista.v0_vista import VistaEngine
from repro.vista.v1_mirror_copy import MirrorCopyEngine
from repro.vista.v2_mirror_diff import MirrorDiffEngine
from repro.vista.v3_inline_log import InlineLogEngine

#: Version tag -> engine class, in the paper's order.
ENGINE_VERSIONS: Dict[str, Type[TransactionEngine]] = {
    VistaEngine.VERSION: VistaEngine,
    MirrorCopyEngine.VERSION: MirrorCopyEngine,
    MirrorDiffEngine.VERSION: MirrorDiffEngine,
    InlineLogEngine.VERSION: InlineLogEngine,
}


def engine_class(version: str) -> Type[TransactionEngine]:
    """Resolve a version tag ('v0'..'v3') to its engine class."""
    try:
        return ENGINE_VERSIONS[version]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine version {version!r}; "
            f"expected one of {sorted(ENGINE_VERSIONS)}"
        ) from None


def create_engine(
    version: str,
    rio: RioMemory,
    config: Optional[EngineConfig] = None,
    space: Optional[AddressSpace] = None,
    fresh: bool = True,
) -> TransactionEngine:
    """Create an engine of the given version over regions in ``rio``."""
    return engine_class(version).create(rio, config, space, fresh)
