"""Version 1 — mirroring by copying (Section 4.2).

The linked-list undo log is replaced by an array of set_range
coordinates allocated by incrementing an index, and a mirror copy of
the database is maintained. Writes go to the database in-place; at
commit each declared range is copied from the database into the
mirror, so the mirror always holds the last committed state. Undo
(abort or recovery) copies the declared ranges back from the mirror.

In the primary-backup configuration the coordinate array stays
primary-local (Section 5.1): the backup restores by copying the whole
mirror over the database, trading longer (rare) recovery for less
(common) communication.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.memory.allocator import ArrayAllocator
from repro.memory.region import MemoryRegion, WriteCategory
from repro.vista.api import EngineConfig, TransactionEngine

_U64 = struct.Struct("<Q")

_RANGE_RECORD_BYTES = 16  # offset (8) | length (8)
_COMMIT_SEQ = 8
_RESTORE_CHUNK = 1 << 20


class MirrorCopyEngine(TransactionEngine):
    """Version 1: set_range array + mirror refreshed by copying."""

    VERSION = "v1"
    TITLE = "Version 1 (Mirror by Copy)"
    REPLICATED = ("db", "control", "mirror")
    LOCAL = ("ranges",)

    @classmethod
    def _extra_region_specs(cls, config: EngineConfig) -> Dict[str, int]:
        return {
            "mirror": config.db_bytes,
            "ranges": 8 + config.range_records * _RANGE_RECORD_BYTES,
        }

    def _setup(self, fresh: bool) -> None:
        self.mirror: MemoryRegion = self.regions["mirror"]
        self.ranges_region = self.regions["ranges"]
        self.range_array = ArrayAllocator(
            self.ranges_region, _RANGE_RECORD_BYTES, fresh=fresh
        )
        self.profile.declare("mirror", self.config.nominal)
        if fresh:
            self._write_control(_COMMIT_SEQ, 0)

    def _write_control(self, offset: int, value: int) -> None:
        self.control.write(offset, _U64.pack(value), WriteCategory.META)

    def _read_control(self, offset: int) -> int:
        return _U64.unpack(self.control.read(offset, 8))[0]

    @property
    def commit_sequence(self) -> int:
        return self._read_control(_COMMIT_SEQ)

    def _on_initialize(self, offset: int, data: bytes) -> None:
        self.mirror.poke(offset, data)

    # -- range array ------------------------------------------------------

    def _record_range(self, offset: int, length: int) -> None:
        record = self.range_array.push()
        self.counters.array_pushes += 1
        self.ranges_region.write(record, _U64.pack(offset), WriteCategory.META)
        self.ranges_region.write(
            record + 8, _U64.pack(length), WriteCategory.META
        )

    def _declared_ranges(self) -> List[Tuple[int, int]]:
        entries = []
        for index in range(self.range_array.count):
            record = self.range_array.record_offset(index)
            offset = _U64.unpack(self.ranges_region.read(record, 8))[0]
            length = _U64.unpack(self.ranges_region.read(record + 8, 8))[0]
            entries.append((offset, length))
        return entries

    # -- hooks ---------------------------------------------------------------

    def _on_set_range(self, offset: int, length: int) -> None:
        self._record_range(offset, length)

    def _update_mirror(self, offset: int, length: int) -> None:
        """Refresh the mirror for one committed range (straight copy).

        ``copy_from`` moves the bytes region-to-region without the
        intermediate ``bytes`` a read-then-write pair materializes;
        observers and statistics see exactly the write the pair
        produced.
        """
        self.mirror.copy_from(self.db, offset, offset, length,
                              WriteCategory.UNDO)
        self.counters.undo_bytes_copied += length
        self.profile.touch_random("mirror", offset, length)

    def _on_commit(self) -> None:
        for offset, length in self._declared_ranges():
            self._update_mirror(offset, length)
        self._write_control(_COMMIT_SEQ, self.commit_sequence + 1)
        self.range_array.truncate(0)

    def _restore_ranges(self) -> None:
        for offset, length in reversed(self._declared_ranges()):
            self.db.copy_from(self.mirror, offset, offset, length,
                              WriteCategory.MODIFIED)
            self.counters.rollback_bytes += length
        self.range_array.truncate(0)

    def _on_abort(self) -> None:
        self._restore_ranges()

    def _on_recover(self) -> None:
        self._restore_ranges()

    def restore_from_mirror(self) -> None:
        """Whole-database restore used by a backup that does not have
        the coordinate array (the Section 5.1 optimization): copy the
        entire mirror over the database."""
        for offset in range(0, self.db.size, _RESTORE_CHUNK):
            chunk = min(_RESTORE_CHUNK, self.db.size - offset)
            # poke accepts any bytes-like; the view avoids one
            # chunk-sized intermediate copy per iteration.
            self.db.poke(offset, self.mirror.view(offset, chunk))
        self.counters.rollback_bytes += self.db.size
        self.range_array.truncate(0)
        self._active = False
        self.counters.recoveries += 1
