"""The Vista transaction engines.

Implements the RVM transaction API (``begin_transaction``,
``set_range``, ``commit_transaction``, ``abort_transaction``) in the
four structural variants the paper compares (Section 4):

* :class:`~repro.vista.v0_vista.VistaEngine` — Version 0, the original
  Vista design: out-of-line undo records in a linked list, allocated
  from a heap.
* :class:`~repro.vista.v1_mirror_copy.MirrorCopyEngine` — Version 1,
  mirroring by copying: a set_range coordinate array plus a mirror
  copy of the database refreshed by copying whole ranges at commit.
* :class:`~repro.vista.v2_mirror_diff.MirrorDiffEngine` — Version 2,
  mirroring by diffing: as Version 1, but only bytes that actually
  changed are written to the mirror.
* :class:`~repro.vista.v3_inline_log.InlineLogEngine` — Version 3,
  improved logging: pre-images kept inline in a contiguous undo log
  allocated by advancing a pointer.

All four implement :class:`~repro.vista.api.TransactionEngine` and are
fully functional: real bytes, real undo, real crash recovery.
"""

from repro.vista.api import EngineConfig, TransactionEngine
from repro.vista.stats import AccessProfile, EngineCounters
from repro.vista.v0_vista import VistaEngine
from repro.vista.v1_mirror_copy import MirrorCopyEngine
from repro.vista.v2_mirror_diff import MirrorDiffEngine
from repro.vista.v3_inline_log import InlineLogEngine
from repro.vista.factory import ENGINE_VERSIONS, create_engine, engine_class

__all__ = [
    "EngineConfig",
    "TransactionEngine",
    "EngineCounters",
    "AccessProfile",
    "VistaEngine",
    "MirrorCopyEngine",
    "MirrorDiffEngine",
    "InlineLogEngine",
    "ENGINE_VERSIONS",
    "create_engine",
    "engine_class",
]
