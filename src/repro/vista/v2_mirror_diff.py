"""Version 2 — mirroring by diffing (Section 4.3).

Identical in structure to Version 1, but at commit the database and
mirror copies of each declared range are *compared* and only the words
that actually changed are written to the mirror. Fewer bytes are
written than Version 1 (only modifications, not whole ranges) at the
price of reading and comparing both copies.

Standalone, the comparison cost outweighs the savings (Table 3); with
a passive backup the saved Memory Channel traffic makes Version 2
slightly better than Version 1 (Table 4) — both results emerge from
the counts this class records.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import repro.fastpath
from repro.memory.region import WriteCategory
from repro.vista.v1_mirror_copy import MirrorCopyEngine

_WORD = 4  # diff granularity: the Alpha writes in 4-byte words


def diff_runs(old: bytes, new: bytes, word: int = _WORD) -> Iterator[Tuple[int, int]]:
    """Yield (offset, length) runs of words where ``new`` differs from
    ``old``. Offsets are relative to the start of the buffers; runs are
    maximal and word-aligned (a trailing partial word is treated as one
    word).

    This is the reference implementation; the fast path routes the
    same comparison through the big-int XOR kernel
    (:func:`repro.fastpath.kernels.diff_runs_fast`), which a Hypothesis
    suite holds equal to this loop run-for-run."""
    if len(old) != len(new):
        raise ValueError("diff buffers must have equal length")
    length = len(old)
    run_start = None
    offset = 0
    while offset < length:
        hi = min(offset + word, length)
        differs = old[offset:hi] != new[offset:hi]
        if differs and run_start is None:
            run_start = offset
        elif not differs and run_start is not None:
            yield run_start, offset - run_start
            run_start = None
        offset = hi
    if run_start is not None:
        yield run_start, length - run_start


class MirrorDiffEngine(MirrorCopyEngine):
    """Version 2: set_range array + mirror refreshed by diffing."""

    VERSION = "v2"
    TITLE = "Version 2 (Mirror by Diff)"

    def _update_mirror(self, offset: int, length: int) -> None:
        """Refresh the mirror for one committed range by comparing the
        two copies and writing only the differing runs."""
        if repro.fastpath.enabled():
            # Kernel path: zero-copy views of both regions, big-int XOR
            # scan. Identical runs, identical mirror writes and counts.
            from repro.fastpath.kernels import diff_runs_fast

            with self.db.view(offset, length) as current_view, self.mirror.view(
                offset, length
            ) as committed_view:
                runs = diff_runs_fast(committed_view, current_view)
            current = self.db.read(offset, length)
        else:
            current = self.db.read(offset, length)
            committed = self.mirror.read(offset, length)
            runs = diff_runs(committed, current)
        self.counters.bytes_compared += length
        self.profile.touch_random("mirror", offset, length)
        for run_offset, run_length in runs:
            self.mirror.write(
                offset + run_offset,
                current[run_offset : run_offset + run_length],
                WriteCategory.UNDO,
            )
            self.counters.undo_bytes_copied += run_length
