"""Version 0 — the original Vista library (Section 4.1).

A ``set_range`` allocates an undo record from the heap and links it
into the undo log, which is a linked list. A second heap allocation
holds the pre-image, filled by a bcopy from the database. Database
writes are in-place. On commit, a commit flag is set and the records
and pre-image buffers are freed; on abort (or crash recovery) the
pre-images are re-installed from the undo log.

Every allocator and list manipulation is a real write into the heap
region, so in a write-through replica all of this bookkeeping crosses
the SAN — that is the metadata avalanche of Tables 1 and 2.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.memory.allocator import HeapAllocator, NULL
from repro.memory.region import WriteCategory
from repro.vista.api import EngineConfig, TransactionEngine

_U64 = struct.Struct("<Q")

_RECORD_BYTES = 32  # next (8) | db offset (8) | length (8) | buffer (8)
_HEAD = 0  # control offset of the undo-list head
_COMMIT_SEQ = 8  # control offset of the commit sequence number


class VistaEngine(TransactionEngine):
    """Version 0: linked-list undo log with heap-allocated records."""

    VERSION = "v0"
    TITLE = "Version 0 (Vista)"
    REPLICATED = ("db", "control", "heap")
    LOCAL = ()

    @classmethod
    def _extra_region_specs(cls, config: EngineConfig) -> Dict[str, int]:
        return {"heap": config.log_bytes}

    def _setup(self, fresh: bool) -> None:
        self.heap_region = self.regions["heap"]
        self.heap = HeapAllocator(self.heap_region, fresh=fresh)
        self.profile.declare("heap", self.heap_region.size)
        if fresh:
            self._write_control(_HEAD, NULL)
            self._write_control(_COMMIT_SEQ, 0)

    # -- control-region fields ---------------------------------------------

    def _write_control(self, offset: int, value: int) -> None:
        self.control.write(offset, _U64.pack(value), WriteCategory.META)

    def _read_control(self, offset: int) -> int:
        return _U64.unpack(self.control.read(offset, 8))[0]

    @property
    def commit_sequence(self) -> int:
        return self._read_control(_COMMIT_SEQ)

    # -- heap record fields ---------------------------------------------------

    def _write_field(self, record: int, index: int, value: int) -> None:
        self.heap_region.write(
            record + index * 8, _U64.pack(value), WriteCategory.META
        )

    def _read_field(self, record: int, index: int) -> int:
        return _U64.unpack(self.heap_region.read(record + index * 8, 8))[0]

    # -- hooks ---------------------------------------------------------------

    def _on_set_range(self, offset: int, length: int) -> None:
        record = self.heap.malloc(_RECORD_BYTES)
        buffer = self.heap.malloc(length)
        self.counters.mallocs += 2

        head = self._read_control(_HEAD)
        self._write_field(record, 0, head)  # next
        self._write_field(record, 1, offset)
        self._write_field(record, 2, length)
        self._write_field(record, 3, buffer)
        self.counters.list_ops += 1

        # bcopy the current contents of the range into the pre-image
        # buffer (this is "undo data" in the traffic tables).
        self.heap_region.write(
            buffer, self.db.read(offset, length), WriteCategory.UNDO
        )
        self.counters.undo_bytes_copied += length
        self.profile.touch_random("heap", buffer, length)

        self._write_control(_HEAD, record)

    def _collect(self) -> List[Tuple[int, int, int, int]]:
        """Walk the undo list head-first (most recent range first)."""
        entries = []
        record = self._read_control(_HEAD)
        while record != NULL:
            next_record = self._read_field(record, 0)
            offset = self._read_field(record, 1)
            length = self._read_field(record, 2)
            buffer = self._read_field(record, 3)
            entries.append((record, offset, length, buffer))
            record = next_record
            self.counters.walk_steps += 1
        return entries

    def _on_commit(self) -> None:
        entries = self._collect()
        # The commit point: detaching the list atomically commits.
        self._write_control(_HEAD, NULL)
        self._write_control(_COMMIT_SEQ, self.commit_sequence + 1)
        for record, _offset, _length, buffer in entries:
            self.heap.free(buffer)
            self.heap.free(record)
            self.counters.frees += 2
            self.counters.list_ops += 1
        self.counters.walk_steps += self.heap.walk_steps
        self.heap.walk_steps = 0

    def _rollback(self, reformat_heap: bool) -> None:
        entries = self._collect()
        # Head-first order re-installs the most recent pre-image first;
        # the oldest pre-image of an overlapping range lands last, which
        # is the correct LIFO undo order.
        for _record, offset, length, buffer in entries:
            pre_image = self.heap_region.read(buffer, length)
            self.db.write(offset, pre_image, WriteCategory.MODIFIED)
            self.counters.rollback_bytes += length
        self._write_control(_HEAD, NULL)
        if reformat_heap:
            # After a crash the heap may hold a half-linked allocation;
            # since it only ever holds undo structures — all dead once
            # the rollback is applied — recovery reformats it.
            self.heap = HeapAllocator(self.heap_region, fresh=True)
        else:
            for _record, _offset, _length, buffer in reversed(entries):
                self.heap.free(buffer)
                self.heap.free(_record)
                self.counters.frees += 2

    def _on_abort(self) -> None:
        self._rollback(reformat_heap=False)

    def _on_recover(self) -> None:
        self._rollback(reformat_heap=True)
